"""Docs-consistency check: the documentation cannot silently rot.

Asserts that everything the observability layer and the CLI expose is
actually documented: every public symbol in
``repro.observability.__all__``, every registered event kind and metric
name, and every CLI subcommand must appear in the docs.  A new event
kind or public symbol without a matching docs edit fails CI here.
"""

from pathlib import Path

import pytest

import repro.observability as observability
from repro.__main__ import EXPERIMENTS, SUBCOMMANDS
from repro.observability import (
    EVENT_KINDS,
    METRIC_NAMES,
    QUANTITIES,
    SNAPSHOT_SCHEMA,
)

REPO = Path(__file__).resolve().parent.parent
OBSERVABILITY_DOC = REPO / "docs" / "observability.md"
PERFORMANCE_DOC = REPO / "docs" / "performance.md"


@pytest.fixture(scope="module")
def observability_doc() -> str:
    assert OBSERVABILITY_DOC.exists(), "docs/observability.md is missing"
    return OBSERVABILITY_DOC.read_text()


@pytest.fixture(scope="module")
def all_docs() -> str:
    texts = [(REPO / "README.md").read_text()]
    texts += [p.read_text() for p in sorted((REPO / "docs").glob("*.md"))]
    return "\n".join(texts)


class TestObservabilityDocs:
    def test_every_public_symbol_documented(self, observability_doc):
        missing = [name for name in observability.__all__
                   if name not in observability_doc]
        assert not missing, f"undocumented observability symbols: {missing}"

    def test_every_event_kind_documented(self, observability_doc):
        missing = [kind for kind in EVENT_KINDS
                   if f"`{kind}`" not in observability_doc]
        assert not missing, f"undocumented event kinds: {missing}"

    def test_every_metric_name_documented(self, observability_doc):
        missing = [name for name in METRIC_NAMES
                   if f"`{name}`" not in observability_doc]
        assert not missing, f"undocumented metric names: {missing}"

    def test_every_quantity_documented(self, observability_doc):
        missing = [name for name in QUANTITIES
                   if f"`{name}`" not in observability_doc]
        assert not missing, f"undocumented ledger quantities: {missing}"

    def test_snapshot_schema_documented(self, observability_doc):
        assert SNAPSHOT_SCHEMA in observability_doc, (
            f"snapshot schema string {SNAPSHOT_SCHEMA!r} must appear in "
            "docs/observability.md"
        )


class TestCliDocs:
    def test_every_subcommand_documented(self, all_docs):
        missing = [name for name in SUBCOMMANDS
                   if f"repro {name}" not in all_docs]
        assert not missing, f"undocumented CLI subcommands: {missing}"

    def test_every_experiment_listed_in_docs(self, all_docs):
        missing = [name for name in EXPERIMENTS if name not in all_docs]
        assert not missing, f"undocumented experiments: {missing}"


class TestPerformanceDocs:
    @pytest.fixture(scope="class")
    def performance_doc(self) -> str:
        assert PERFORMANCE_DOC.exists(), "docs/performance.md is missing"
        return PERFORMANCE_DOC.read_text()

    def test_cache_env_vars_documented(self, performance_doc):
        for var in ("REPRO_CACHE_DIR", "REPRO_NO_CACHE"):
            assert var in performance_doc, f"{var} missing from docs/performance.md"

    def test_cache_public_api_documented(self, performance_doc):
        import repro.experiments.cache as cache

        api_doc = (REPO / "docs" / "api.md").read_text()
        missing = [name for name in cache.__all__
                   if name not in api_doc and name not in performance_doc]
        assert not missing, f"cache symbols missing from docs: {missing}"

    def test_bench_diff_usage_shown(self, performance_doc):
        assert "repro bench-diff" in performance_doc
        assert "BENCH_" in performance_doc

    def test_linked_from_architecture(self):
        text = (REPO / "docs" / "architecture.md").read_text()
        assert "performance.md" in text
        assert "repro.experiments.cache" in text


class TestApiDocs:
    def test_workflow_public_api_documented(self):
        import repro.workflow as workflow

        api_doc = (REPO / "docs" / "api.md").read_text()
        missing = [name for name in workflow.__all__ if name not in api_doc]
        assert not missing, f"workflow symbols missing from docs/api.md: {missing}"

    def test_architecture_diagram_names_observability(self):
        text = (REPO / "docs" / "architecture.md").read_text()
        assert "repro.observability" in text
