"""Unit tests for the machine model (nodes, memory, partitions)."""

import pytest

from repro.errors import ResourceError
from repro.hpc.event import Simulator
from repro.hpc.machine import Machine, MemoryPool
from repro.units import GiB, MiB


@pytest.fixture()
def sim():
    return Simulator()


class TestMemoryPool:
    def test_allocate_and_free(self):
        pool = MemoryPool(1 * GiB)
        pool.allocate(256 * MiB)
        assert pool.used == 256 * MiB
        assert pool.available == 768 * MiB
        pool.free(256 * MiB)
        assert pool.used == 0

    def test_overcommit_raises(self):
        pool = MemoryPool(1 * GiB)
        with pytest.raises(ResourceError):
            pool.allocate(2 * GiB)

    def test_peak_tracking(self):
        pool = MemoryPool(1 * GiB)
        pool.allocate(100 * MiB)
        pool.allocate(200 * MiB)
        pool.free(250 * MiB)
        assert pool.peak == 300 * MiB

    def test_free_more_than_used_raises(self):
        pool = MemoryPool(1 * GiB)
        pool.allocate(10 * MiB)
        with pytest.raises(ResourceError):
            pool.free(20 * MiB)

    def test_can_fit(self):
        pool = MemoryPool(100 * MiB)
        pool.allocate(60 * MiB)
        assert pool.can_fit(40 * MiB)
        assert not pool.can_fit(41 * MiB)

    def test_nonpositive_total_rejected(self):
        with pytest.raises(ResourceError):
            MemoryPool(0)


class TestMachinePartitions:
    def test_partition_split(self, sim):
        m = Machine(sim, node_count=10, cores_per_node=4,
                    memory_per_node=2 * GiB, core_rate=1e4)
        p_sim = m.create_partition("simulation", 8)
        p_stage = m.create_partition("staging", 2)
        assert p_sim.physical_cores == 32
        assert p_stage.physical_cores == 8
        assert m.partition("staging") is p_stage

    def test_cannot_oversubscribe_nodes(self, sim):
        m = Machine(sim, node_count=4, cores_per_node=4,
                    memory_per_node=2 * GiB, core_rate=1e4)
        m.create_partition("a", 3)
        with pytest.raises(ResourceError):
            m.create_partition("b", 2)

    def test_duplicate_partition_name_rejected(self, sim):
        m = Machine(sim, node_count=4, cores_per_node=4,
                    memory_per_node=2 * GiB, core_rate=1e4)
        m.create_partition("a", 1)
        with pytest.raises(ResourceError):
            m.create_partition("a", 1)

    def test_unknown_partition_lookup_raises(self, sim):
        m = Machine(sim, node_count=2, cores_per_node=4,
                    memory_per_node=2 * GiB, core_rate=1e4)
        with pytest.raises(ResourceError):
            m.partition("nope")

    def test_partition_memory_aggregates(self, sim):
        m = Machine(sim, node_count=4, cores_per_node=4,
                    memory_per_node=2 * GiB, core_rate=1e4)
        p = m.create_partition("p", 3)
        assert p.total_memory == 6 * GiB
        assert p.memory_per_core == 512 * MiB

    def test_partition_memory_allocation_spread(self, sim):
        m = Machine(sim, node_count=3, cores_per_node=4,
                    memory_per_node=1 * GiB, core_rate=1e4)
        p = m.create_partition("p", 2)
        p.allocate_memory(1 * GiB)
        assert p.available_memory == pytest.approx(1 * GiB)
        for node in p.nodes:
            assert node.memory.used == pytest.approx(512 * MiB)
        p.free_memory(1 * GiB)
        assert p.available_memory == pytest.approx(2 * GiB)

    def test_partition_allocation_rolls_back_on_failure(self, sim):
        m = Machine(sim, node_count=3, cores_per_node=4,
                    memory_per_node=1 * GiB, core_rate=1e4)
        p = m.create_partition("p", 2)
        # Pre-load one node so the even spread cannot fit there.
        p.nodes[1].memory.allocate(900 * MiB)
        with pytest.raises(ResourceError):
            p.allocate_memory(600 * MiB)
        assert p.nodes[0].memory.used == 0  # rollback happened

    def test_set_active_cores_clamps(self, sim):
        m = Machine(sim, node_count=4, cores_per_node=4,
                    memory_per_node=2 * GiB, core_rate=1e4)
        p = m.create_partition("p", 2)
        p.set_active_cores(5)
        assert p.active_cores == 5
        with pytest.raises(ResourceError):
            p.set_active_cores(9)
        with pytest.raises(ResourceError):
            p.set_active_cores(0)

    def test_compute_time_scales_inverse_with_cores(self, sim):
        m = Machine(sim, node_count=2, cores_per_node=4,
                    memory_per_node=2 * GiB, core_rate=1e4)
        assert m.compute_time(1e6, cores=10) == pytest.approx(10.0)
        assert m.compute_time(1e6, cores=100) == pytest.approx(1.0)

    def test_machine_needs_two_nodes(self, sim):
        with pytest.raises(ResourceError):
            Machine(sim, node_count=1, cores_per_node=4,
                    memory_per_node=2 * GiB, core_rate=1e4)
