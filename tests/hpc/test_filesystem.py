"""Tests for the parallel file system model."""

import pytest

from repro.errors import SimulationError
from repro.hpc.event import Simulator
from repro.hpc.filesystem import ParallelFileSystem
from repro.hpc.network import Network


@pytest.fixture()
def setup():
    sim = Simulator()
    net = Network(sim)
    net.add_link("sim", "staging", bandwidth=1e9)
    pfs = ParallelFileSystem(sim, net, write_bandwidth=100.0,
                             read_bandwidth=200.0, latency=0.5)
    pfs.attach("sim")
    pfs.attach("staging")
    return sim, net, pfs


class TestReadWrite:
    def test_write_time(self, setup):
        sim, _net, pfs = setup
        done = pfs.write("sim", 1000.0)
        sim.run(done)
        assert sim.now == pytest.approx(0.5 + 10.0)
        assert pfs.bytes_written == 1000.0

    def test_read_time(self, setup):
        sim, _net, pfs = setup
        done = pfs.read("staging", 1000.0)
        sim.run(done)
        assert sim.now == pytest.approx(0.5 + 5.0)
        assert pfs.bytes_read == 1000.0

    def test_concurrent_writers_share_bandwidth(self, setup):
        sim, _net, pfs = setup
        d1 = pfs.write("sim", 500.0)
        d2 = pfs.write("staging", 500.0)
        sim.run(sim.all_of([d1, d2]))
        # 100 B/s shared between two 500 B writes -> 10 s + latency.
        assert sim.now == pytest.approx(10.5)

    def test_reads_do_not_contend_with_writes(self, setup):
        sim, _net, pfs = setup
        w = pfs.write("sim", 1000.0)  # 10 s at full write bw
        r = pfs.read("staging", 2000.0)  # 10 s at full read bw
        sim.run(sim.all_of([w, r]))
        assert sim.now == pytest.approx(10.5)

    def test_estimates_match_uncontended(self, setup):
        sim, _net, pfs = setup
        est = pfs.estimate_write_time("sim", 1000.0)
        done = pfs.write("sim", 1000.0)
        sim.run(done)
        assert sim.now == pytest.approx(est)
        assert pfs.estimate_read_time("sim", 1000.0) == pytest.approx(5.5)


class TestValidation:
    def test_unattached_client_rejected(self, setup):
        _sim, _net, pfs = setup
        with pytest.raises(SimulationError):
            pfs.write("stranger", 10.0)
        with pytest.raises(SimulationError):
            pfs.read("stranger", 10.0)

    def test_double_attach_is_noop(self, setup):
        sim, net, pfs = setup
        links_before = net.graph.number_of_edges()
        pfs.attach("sim")
        assert net.graph.number_of_edges() == links_before

    def test_bad_bandwidths_rejected(self):
        sim = Simulator()
        net = Network(sim)
        with pytest.raises(SimulationError):
            ParallelFileSystem(sim, net, write_bandwidth=0, read_bandwidth=1)
