"""Property-based tests for the event kernel and network invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hpc.event import Simulator
from repro.hpc.network import Network
from repro.hpc.resources import Resource


class TestEventKernelProperties:
    @settings(deadline=None, max_examples=40)
    @given(st.lists(st.floats(0.01, 50.0), min_size=1, max_size=30))
    def test_clock_ends_at_max_delay(self, delays):
        sim = Simulator()

        def sleeper(sim, d):
            yield sim.timeout(d)

        for d in delays:
            sim.process(sleeper(sim, d))
        sim.run()
        assert sim.now == pytest.approx(max(delays))

    @settings(deadline=None, max_examples=30)
    @given(st.lists(st.tuples(st.floats(0.01, 10.0), st.floats(0.01, 10.0)),
                    min_size=1, max_size=20))
    def test_sequential_delays_accumulate(self, pairs):
        sim = Simulator()
        results = {}

        def worker(sim, idx, a, b):
            start = sim.now
            yield sim.timeout(a)
            yield sim.timeout(b)
            results[idx] = sim.now - start

        for i, (a, b) in enumerate(pairs):
            sim.process(worker(sim, i, a, b))
        sim.run()
        for i, (a, b) in enumerate(pairs):
            assert results[i] == pytest.approx(a + b)

    @settings(deadline=None, max_examples=25)
    @given(
        st.integers(1, 8),
        st.lists(st.floats(0.1, 5.0), min_size=1, max_size=25),
    )
    def test_resource_conserves_work(self, capacity, durations):
        """Total busy core-time equals the sum of job durations, regardless
        of contention, and the makespan respects the capacity bound."""
        sim = Simulator()
        cores = Resource(sim, capacity=capacity)

        def job(sim, d):
            yield cores.request(1)
            yield sim.timeout(d)
            cores.release(1)

        for d in durations:
            sim.process(job(sim, d))
        sim.run()
        assert cores.busy_time() == pytest.approx(sum(durations))
        assert sim.now >= sum(durations) / capacity - 1e-9
        assert sim.now <= sum(durations) + 1e-9


class TestNetworkProperties:
    @settings(deadline=None, max_examples=25)
    @given(
        st.lists(
            st.tuples(st.floats(1.0, 500.0), st.floats(0.0, 5.0)),
            min_size=1,
            max_size=15,
        ),
        st.floats(10.0, 1000.0),
    )
    def test_all_bytes_delivered_and_bounded(self, flows, bandwidth):
        """Every transfer completes; total time is bounded below by the
        aggregate bytes over the link capacity, and above by the serial
        time plus start offsets."""
        sim = Simulator()
        net = Network(sim)
        net.add_link("a", "b", bandwidth=bandwidth)
        done = []

        def starter(sim, size, delay):
            yield sim.timeout(delay)
            xfer = net.transfer("a", "b", size)
            result = yield xfer
            done.append(result)

        for size, delay in flows:
            sim.process(starter(sim, size, delay))
        sim.run()
        assert len(done) == len(flows)
        total = sum(size for size, _ in flows)
        assert net.total_bytes_moved == pytest.approx(total)
        last_start = max(d for _, d in flows)
        assert sim.now >= total / bandwidth - 1e-6
        assert sim.now <= last_start + total / bandwidth + 1e-5 * len(flows) + 1e-6

    @settings(deadline=None, max_examples=20)
    @given(st.integers(1, 10), st.floats(10.0, 200.0))
    def test_equal_flows_finish_together(self, n, size):
        sim = Simulator()
        net = Network(sim)
        net.add_link("a", "b", bandwidth=100.0)
        finish = []

        def watch(sim, evt):
            yield evt
            finish.append(sim.now)

        for _ in range(n):
            sim.process(watch(sim, net.transfer("a", "b", size)))
        sim.run()
        assert np.allclose(finish, n * size / 100.0, rtol=1e-9)


class TestPopRunBoundaryProperties:
    """Pin ``EventHeap.pop_run`` at the scalar/vectorized boundary.

    Runs of length <= ``_RUN_SCALAR_MAX`` pop record-by-record; longer
    runs take the vectorized extract-and-rebuild path.  The two paths
    must be observationally identical, including when the top timestamp
    holds duplicated ``(time, kind)`` records interleaved across kinds
    (so the run cut lands mid-timestamp).  ``ReferenceEventHeap`` is the
    heapq oracle with the same API.
    """

    @settings(deadline=None, max_examples=60)
    @given(
        segments=st.lists(
            st.tuples(
                st.integers(0, 2),          # time index (duplicated times)
                st.integers(0, 3),          # kind code
                st.integers(1, 40),         # segment length around the cut
            ),
            min_size=1,
            max_size=8,
        ),
        batched=st.booleans(),
    )
    def test_pop_sequences_match_reference(self, segments, batched):
        from repro.hpc.kernel import EventHeap, ReferenceEventHeap

        fast, oracle = EventHeap(capacity=4), ReferenceEventHeap()
        payload = 0
        times = [1.0, 2.5, 2.5]  # includes a duplicated timestamp
        for t_idx, kind, length in segments:
            t = times[t_idx]
            if batched:
                ps = np.arange(payload, payload + length, dtype=np.int64)
                fast.push_batch(t, kind, ps)
                oracle.push_batch(t, kind, ps)
            else:
                for _ in range(length):
                    fast.push(t, kind, payload)
                    oracle.push(t, kind, payload)
                    payload += 1
                continue
            payload += length
        while len(oracle):
            ft, fk, fs, fp = fast.pop_run()
            ot, ok, os_, op = oracle.pop_run()
            assert ft == ot
            assert fk == ok
            assert fs.tolist() == os_.tolist()
            assert fp.tolist() == op.tolist()
        assert len(fast) == 0

    @settings(deadline=None, max_examples=40)
    @given(
        head=st.integers(28, 40),   # same-kind prefix length at the top
        tail=st.integers(0, 40),    # different-kind records at the same time
        interleave=st.booleans(),
    )
    def test_exact_threshold_cut_with_interleaved_kinds(
        self, head, tail, interleave
    ):
        """Drive the cut through 32 exactly, with the run's timestamp
        shared by records of another kind before *and* after it."""
        from repro.hpc.kernel import EventHeap, ReferenceEventHeap

        fast, oracle = EventHeap(capacity=4), ReferenceEventHeap()
        for heap in (fast, oracle):
            p = 0
            for _ in range(head):
                heap.push(5.0, 1, p)
                p += 1
            for _ in range(tail):
                heap.push(5.0, 2, p)
                p += 1
            if interleave:
                # More of the first kind *after* the kind change: the run
                # must still stop at the first mismatch in seq order.
                for _ in range(3):
                    heap.push(5.0, 1, p)
                    p += 1
            heap.push(9.0, 0, p)
        runs_fast, runs_oracle = [], []
        while len(fast):
            t, k, s, pl = fast.pop_run()
            runs_fast.append((t, k, s.tolist(), pl.tolist()))
        while len(oracle):
            t, k, s, pl = oracle.pop_run()
            runs_oracle.append((t, k, s.tolist(), pl.tolist()))
        assert runs_fast == runs_oracle
        if head > 32 and not interleave:
            # The first run crossed the scalar ceiling: it must still be
            # the full same-kind prefix, cut exactly at the kind change.
            assert len(runs_fast[0][3]) == head
