"""Unit tests for Resource and Store."""

import pytest

from repro.errors import ResourceError
from repro.hpc.event import Simulator
from repro.hpc.resources import Resource, Store


@pytest.fixture()
def sim():
    return Simulator()


class TestResource:
    def test_immediate_grant_when_available(self, sim):
        res = Resource(sim, capacity=4)

        def proc(sim):
            yield res.request(2)
            return (res.in_use, res.available)

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == (2, 2)

    def test_fcfs_blocking_and_wakeup(self, sim):
        res = Resource(sim, capacity=1)
        order = []

        def holder(sim):
            yield res.request(1)
            yield sim.timeout(5.0)
            res.release(1)

        def waiter(sim, tag):
            yield res.request(1)
            order.append((tag, sim.now))
            res.release(1)

        sim.process(holder(sim))
        sim.process(waiter(sim, "first"))
        sim.process(waiter(sim, "second"))
        sim.run()
        assert order == [("first", 5.0), ("second", 5.0)]

    def test_fcfs_head_of_line_blocking(self, sim):
        # A large request at the head must not be overtaken by a small one.
        res = Resource(sim, capacity=4)
        order = []

        def holder(sim):
            yield res.request(3)
            yield sim.timeout(10.0)
            res.release(3)

        def big(sim):
            yield sim.timeout(1.0)
            yield res.request(4)
            order.append("big")
            res.release(4)

        def small(sim):
            yield sim.timeout(2.0)
            yield res.request(1)
            order.append("small")
            res.release(1)

        sim.process(holder(sim))
        sim.process(big(sim))
        sim.process(small(sim))
        sim.run()
        assert order == ["big", "small"]

    def test_request_exceeding_capacity_raises(self, sim):
        res = Resource(sim, capacity=2)
        with pytest.raises(ResourceError):
            res.request(3)

    def test_release_more_than_in_use_raises(self, sim):
        res = Resource(sim, capacity=2)

        def proc(sim):
            yield res.request(1)
            res.release(2)

        sim.process(proc(sim))
        with pytest.raises(ResourceError):
            sim.run()

    def test_resize_up_wakes_waiters(self, sim):
        res = Resource(sim, capacity=1)
        log = []

        def holder(sim):
            yield res.request(1)
            yield sim.timeout(100.0)
            res.release(1)

        def waiter(sim):
            yield res.request(1)
            log.append(sim.now)
            res.release(1)

        def grower(sim):
            yield sim.timeout(3.0)
            res.resize(2)

        sim.process(holder(sim))
        sim.process(waiter(sim))
        sim.process(grower(sim))
        sim.run()
        assert log == [3.0]

    def test_resize_down_below_in_use_allowed(self, sim):
        res = Resource(sim, capacity=4)

        def proc(sim):
            yield res.request(3)
            res.resize(2)
            assert res.available == -1 or res.available <= 0
            res.release(3)
            return res.available

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == 2

    def test_busy_time_accounting(self, sim):
        res = Resource(sim, capacity=4, name="cores")

        def proc(sim):
            yield res.request(2)
            yield sim.timeout(10.0)
            res.release(2)
            yield sim.timeout(5.0)

        sim.process(proc(sim))
        sim.run()
        assert res.busy_time() == pytest.approx(20.0)  # 2 cores * 10 s

    def test_queue_length(self, sim):
        res = Resource(sim, capacity=1)

        def holder(sim):
            yield res.request(1)
            yield sim.timeout(10.0)
            res.release(1)

        def waiter(sim):
            yield res.request(1)
            res.release(1)

        sim.process(holder(sim))
        sim.process(waiter(sim))
        sim.process(waiter(sim))
        sim.run(until=5.0)
        assert res.queue_length == 2

    def test_negative_capacity_rejected(self, sim):
        with pytest.raises(ResourceError):
            Resource(sim, capacity=-1)

    def test_nonpositive_request_rejected(self, sim):
        res = Resource(sim, capacity=2)
        with pytest.raises(ResourceError):
            res.request(0)


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)

        def producer(sim):
            yield store.put("item")

        def consumer(sim):
            item = yield store.get()
            return item

        sim.process(producer(sim))
        c = sim.process(consumer(sim))
        sim.run()
        assert c.value == "item"

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)

        def consumer(sim):
            item = yield store.get()
            return (item, sim.now)

        def producer(sim):
            yield sim.timeout(4.0)
            yield store.put("late")

        c = sim.process(consumer(sim))
        sim.process(producer(sim))
        sim.run()
        assert c.value == ("late", 4.0)

    def test_fifo_ordering(self, sim):
        store = Store(sim)
        received = []

        def producer(sim):
            for item in ("a", "b", "c"):
                yield store.put(item)

        def consumer(sim):
            for _ in range(3):
                item = yield store.get()
                received.append(item)

        sim.process(producer(sim))
        sim.process(consumer(sim))
        sim.run()
        assert received == ["a", "b", "c"]

    def test_bounded_put_blocks(self, sim):
        store = Store(sim, capacity=1)
        log = []

        def producer(sim):
            yield store.put("first")
            log.append(("put-first", sim.now))
            yield store.put("second")
            log.append(("put-second", sim.now))

        def consumer(sim):
            yield sim.timeout(3.0)
            yield store.get()

        sim.process(producer(sim))
        sim.process(consumer(sim))
        sim.run()
        assert log == [("put-first", 0.0), ("put-second", 3.0)]

    def test_len_reflects_buffer(self, sim):
        store = Store(sim)

        def producer(sim):
            yield store.put(1)
            yield store.put(2)

        sim.process(producer(sim))
        sim.run()
        assert len(store) == 2

    def test_invalid_capacity_rejected(self, sim):
        with pytest.raises(ResourceError):
            Store(sim, capacity=0)
