"""Unit tests for the discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.hpc.event import Interrupt, Simulator


@pytest.fixture()
def sim():
    return Simulator()


class TestClockAndTimeout:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_timeout_advances_clock(self, sim):
        def proc(sim):
            yield sim.timeout(2.5)

        sim.process(proc(sim))
        sim.run()
        assert sim.now == 2.5

    def test_timeout_value_passthrough(self, sim):
        def proc(sim):
            got = yield sim.timeout(1.0, value="payload")
            return got

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == "payload"

    def test_negative_timeout_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)

    def test_sequential_timeouts_accumulate(self, sim):
        times = []

        def proc(sim):
            for d in (1.0, 2.0, 3.0):
                yield sim.timeout(d)
                times.append(sim.now)

        sim.process(proc(sim))
        sim.run()
        assert times == [1.0, 3.0, 6.0]

    def test_run_until_time_stops_clock(self, sim):
        def proc(sim):
            yield sim.timeout(10.0)

        sim.process(proc(sim))
        sim.run(until=4.0)
        assert sim.now == 4.0

    def test_run_until_past_raises(self, sim):
        def proc(sim):
            yield sim.timeout(5.0)

        sim.process(proc(sim))
        sim.run()
        with pytest.raises(SimulationError):
            sim.run(until=1.0)

    def test_peek_reports_next_event_time(self, sim):
        def proc(sim):
            yield sim.timeout(7.0)

        sim.process(proc(sim))
        # the process start itself is scheduled at t=0
        assert sim.peek() == 0.0

    def test_peek_empty_is_inf(self, sim):
        assert sim.peek() == float("inf")


class TestDeterminism:
    def test_same_time_events_fire_in_creation_order(self, sim):
        order = []

        def proc(sim, tag):
            yield sim.timeout(1.0)
            order.append(tag)

        for tag in ("a", "b", "c"):
            sim.process(proc(sim, tag))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_repeat_run_is_identical(self):
        def scenario():
            sim = Simulator()
            log = []

            def worker(sim, tag, delay):
                yield sim.timeout(delay)
                log.append((tag, sim.now))

            for i, d in enumerate([0.3, 0.1, 0.2, 0.1]):
                sim.process(worker(sim, i, d))
            sim.run()
            return log

        assert scenario() == scenario()


class TestEvents:
    def test_event_succeed_wakes_waiter(self, sim):
        evt = sim.event()

        def waiter(sim):
            val = yield evt
            return val

        def trigger(sim):
            yield sim.timeout(3.0)
            evt.succeed(42)

        w = sim.process(waiter(sim))
        sim.process(trigger(sim))
        sim.run()
        assert w.value == 42
        assert sim.now == 3.0

    def test_event_fail_propagates_to_waiter(self, sim):
        evt = sim.event()

        def waiter(sim):
            try:
                yield evt
            except ValueError as e:
                return f"caught {e}"

        def trigger(sim):
            yield sim.timeout(1.0)
            evt.fail(ValueError("boom"))

        w = sim.process(waiter(sim))
        sim.process(trigger(sim))
        sim.run()
        assert w.value == "caught boom"

    def test_double_trigger_raises(self, sim):
        evt = sim.event()
        evt.succeed(1)
        with pytest.raises(SimulationError):
            evt.succeed(2)

    def test_value_before_trigger_raises(self, sim):
        evt = sim.event()
        with pytest.raises(SimulationError):
            _ = evt.value

    def test_fail_requires_exception(self, sim):
        evt = sim.event()
        with pytest.raises(SimulationError):
            evt.fail("not an exception")

    def test_waiting_on_already_triggered_event(self, sim):
        evt = sim.event()
        evt.succeed("early")

        def waiter(sim):
            val = yield evt
            return val

        w = sim.process(waiter(sim))
        sim.run()
        assert w.value == "early"


class TestProcesses:
    def test_process_return_value(self, sim):
        def proc(sim):
            yield sim.timeout(1.0)
            return "result"

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == "result"

    def test_process_waits_on_process(self, sim):
        def child(sim):
            yield sim.timeout(2.0)
            return 99

        def parent(sim):
            result = yield sim.process(child(sim))
            return result + 1

        p = sim.process(parent(sim))
        sim.run()
        assert p.value == 100

    def test_unhandled_process_exception_surfaces_in_run(self, sim):
        def bad(sim):
            yield sim.timeout(1.0)
            raise RuntimeError("deliberate")

        sim.process(bad(sim))
        with pytest.raises(RuntimeError, match="deliberate"):
            sim.run()

    def test_handled_child_exception_does_not_abort(self, sim):
        def bad(sim):
            yield sim.timeout(1.0)
            raise RuntimeError("child error")

        def parent(sim):
            child = sim.process(bad(sim))
            try:
                yield child
            except RuntimeError:
                return "recovered"

        p = sim.process(parent(sim))
        sim.run()
        assert p.value == "recovered"

    def test_yield_non_event_raises(self, sim):
        def bad(sim):
            yield 42

        sim.process(bad(sim))
        with pytest.raises(SimulationError):
            sim.run()

    def test_is_alive_lifecycle(self, sim):
        def proc(sim):
            yield sim.timeout(5.0)

        p = sim.process(proc(sim))
        assert p.is_alive
        sim.run()
        assert not p.is_alive

    def test_run_until_event_returns_value(self, sim):
        def proc(sim):
            yield sim.timeout(2.0)
            return "finished"

        p = sim.process(proc(sim))
        assert sim.run(until=p) == "finished"

    def test_run_until_never_firing_event_raises(self, sim):
        evt = sim.event()

        def proc(sim):
            yield sim.timeout(1.0)

        sim.process(proc(sim))
        with pytest.raises(SimulationError):
            sim.run(until=evt)


class TestInterrupt:
    def test_interrupt_delivers_cause(self, sim):
        def sleeper(sim):
            try:
                yield sim.timeout(100.0)
            except Interrupt as i:
                return ("interrupted", i.cause, sim.now)

        def interrupter(sim, victim):
            yield sim.timeout(2.0)
            victim.interrupt("wake up")

        victim = sim.process(sleeper(sim))
        sim.process(interrupter(sim, victim))
        sim.run()
        assert victim.value == ("interrupted", "wake up", 2.0)

    def test_interrupt_finished_process_raises(self, sim):
        def quick(sim):
            yield sim.timeout(0.5)

        p = sim.process(quick(sim))
        sim.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_interrupted_process_can_continue(self, sim):
        def sleeper(sim):
            try:
                yield sim.timeout(100.0)
            except Interrupt:
                pass
            yield sim.timeout(1.0)
            return sim.now

        def interrupter(sim, victim):
            yield sim.timeout(2.0)
            victim.interrupt()

        victim = sim.process(sleeper(sim))
        sim.process(interrupter(sim, victim))
        sim.run()
        assert victim.value == 3.0


class TestCombinators:
    def test_all_of_waits_for_slowest(self, sim):
        def worker(sim, delay):
            yield sim.timeout(delay)
            return delay

        def parent(sim):
            procs = [sim.process(worker(sim, d)) for d in (1.0, 3.0, 2.0)]
            values = yield sim.all_of(procs)
            return (values, sim.now)

        p = sim.process(parent(sim))
        sim.run()
        assert p.value == ([1.0, 3.0, 2.0], 3.0)

    def test_all_of_empty_fires_immediately(self, sim):
        def parent(sim):
            values = yield sim.all_of([])
            return values

        p = sim.process(parent(sim))
        sim.run()
        assert p.value == []

    def test_any_of_returns_first(self, sim):
        def worker(sim, delay):
            yield sim.timeout(delay)
            return delay

        def parent(sim):
            procs = [sim.process(worker(sim, d)) for d in (5.0, 1.0, 3.0)]
            event, value = yield sim.any_of(procs)
            return (value, sim.now)

        p = sim.process(parent(sim))
        sim.run()
        assert p.value == (1.0, 1.0)

    def test_any_of_empty_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.any_of([])

    def test_all_of_propagates_failure(self, sim):
        def ok(sim):
            yield sim.timeout(1.0)

        def bad(sim):
            yield sim.timeout(2.0)
            raise ValueError("nope")

        def parent(sim):
            try:
                yield sim.all_of([sim.process(ok(sim)), sim.process(bad(sim))])
            except ValueError:
                return "failed"

        p = sim.process(parent(sim))
        sim.run()
        assert p.value == "failed"
