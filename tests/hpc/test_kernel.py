"""Unit + property tests for the typed event kernel.

Covers the four engine pieces (kind registry, array-backed heap,
counters, kernel) plus the adapter guarantees the rewrite must hold:
randomized event soups replayed on the array-backed heap and the heapq
oracle produce identical orderings and final clocks, seeded RNG
injection is reproducible, empty-heap and interrupt edge cases behave,
and same-timestamp events preserve submission order across both heap
implementations -- byte-identical workflow traces included.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.hpc.event import Interrupt, Simulator
from repro.hpc.kernel import (
    KERNEL_EVENT_KINDS,
    EventHeap,
    EventKernel,
    KernelCounters,
    ReferenceEventHeap,
    batched_event_kinds,
    event_kind_code,
    event_kind_name,
)
from repro.hpc.network import Network


class TestEventKindRegistry:
    def test_builtin_kinds_registered_in_order(self):
        names = list(KERNEL_EVENT_KINDS)
        assert names[:5] == ["control", "timer", "compute", "transfer", "staging"]

    def test_codes_round_trip(self):
        for code, name in enumerate(list(KERNEL_EVENT_KINDS)[:5]):
            assert event_kind_code(name) == code
            assert event_kind_name(code) == name

    def test_every_kind_has_description(self):
        assert all(desc.strip() for desc in KERNEL_EVENT_KINDS.values())

    def test_domain_kinds_are_batch_eligible(self):
        batched = set(batched_event_kinds())
        assert {"compute", "transfer", "staging"} <= batched
        assert "control" not in batched and "timer" not in batched

    def test_unknown_kind_raises(self):
        with pytest.raises(SimulationError):
            event_kind_code("no-such-kind")
        with pytest.raises(SimulationError):
            event_kind_name(10_000)


@pytest.fixture(params=[EventHeap, ReferenceEventHeap],
                ids=["array", "reference"])
def heap(request):
    return request.param()


class TestEventHeap:
    def test_empty_heap_peeks_inf(self, heap):
        assert len(heap) == 0
        assert heap.peek_time() == float("inf")
        assert heap.peek_kind() == -1

    def test_pop_empty_raises(self, heap):
        with pytest.raises(SimulationError):
            heap.pop()

    def test_pops_in_time_order(self, heap):
        for i, t in enumerate([5.0, 1.0, 3.0, 2.0, 4.0]):
            heap.push(t, 0, i)
        times = [heap.pop()[0] for _ in range(5)]
        assert times == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_ties_pop_in_submission_order(self, heap):
        # The documented Simulator.schedule tie-breaking contract: the
        # seq column preserves submission order at equal timestamps.
        for payload in range(10):
            heap.push(7.0, 0, payload)
        assert [heap.pop()[3] for _ in range(10)] == list(range(10))

    def test_seq_monotonic_across_mixed_pushes(self, heap):
        s1 = heap.push(2.0, 0, 0)
        s2 = heap.push(1.0, 1, 1)
        s3 = heap.push(2.0, 2, 2)
        assert s1 < s2 < s3

    def test_growth_beyond_initial_capacity(self):
        h = EventHeap(capacity=2)
        for i in range(100):
            h.push(float(100 - i), 0, i)
        assert len(h) == 100
        assert h.capacity >= 100
        assert h.peak_size == 100
        assert [h.pop()[3] for _ in range(100)] == list(reversed(range(100)))

    def test_push_batch_orders_with_singles(self, heap):
        heap.push(2.0, 0, 100)
        seqs = heap.push_batch([1.0, 2.0, 3.0], 2, [0, 1, 2])
        assert list(seqs) == sorted(seqs)
        order = [heap.pop()[3] for _ in range(4)]
        # t=1 batch item, then the t=2 single (older seq), then t=2
        # batch item, then t=3.
        assert order == [0, 100, 1, 2]

    def test_push_batch_scalar_time_broadcasts(self, heap):
        heap.push_batch(4.0, 2, np.arange(5))
        time, kind, seqs, payloads = heap.pop_run()
        assert time == 4.0 and kind == 2
        assert list(payloads) == [0, 1, 2, 3, 4]
        assert len(heap) == 0

    def test_push_batch_empty_is_noop(self, heap):
        assert heap.push_batch([], 2, []).size == 0
        assert len(heap) == 0

    def test_pop_run_stops_at_kind_boundary(self, heap):
        heap.push(1.0, 2, 0)
        heap.push(1.0, 2, 1)
        heap.push(1.0, 3, 2)
        heap.push(1.0, 2, 3)
        time, kind, _seqs, payloads = heap.pop_run()
        # Submission order at t=1.0 is kind 2,2,3,2: the run stops at
        # the kind-3 record even though more kind-2 events exist.
        assert (time, kind) == (1.0, 2)
        assert list(payloads) == [0, 1]
        assert heap.pop_run()[1] == 3
        assert heap.pop_run()[3].tolist() == [3]


class TestHeapEquivalence:
    """The array heap and the heapq oracle are observably identical."""

    @settings(deadline=None, max_examples=60)
    @given(st.lists(st.tuples(st.floats(0.0, 20.0), st.integers(0, 4)),
                    min_size=1, max_size=80))
    def test_random_soups_pop_identically(self, records):
        fast, oracle = EventHeap(capacity=2), ReferenceEventHeap()
        for payload, (t, kind) in enumerate(records):
            fast.push(t, kind, payload)
            oracle.push(t, kind, payload)
        fast_order = [fast.pop() for _ in records]
        oracle_order = [oracle.pop() for _ in records]
        assert fast_order == oracle_order

    @settings(deadline=None, max_examples=40)
    @given(st.lists(st.tuples(st.floats(0.0, 10.0), st.booleans()),
                    min_size=1, max_size=60),
           st.integers(0, 2**32 - 1))
    def test_interleaved_push_pop_identical(self, ops, seed):
        rng = np.random.default_rng(seed)
        fast, oracle = EventHeap(capacity=2), ReferenceEventHeap()
        payload = 0
        for t, do_pop in ops:
            if do_pop and len(fast):
                assert fast.pop() == oracle.pop()
            else:
                base = float(rng.uniform(0.0, 5.0))
                fast.push(t + base, 1, payload)
                oracle.push(t + base, 1, payload)
                payload += 1
        while len(fast):
            assert fast.pop() == oracle.pop()
        assert len(oracle) == 0

    @settings(deadline=None, max_examples=30)
    @given(st.lists(st.floats(0.0, 8.0), min_size=1, max_size=40),
           st.lists(st.floats(0.0, 8.0), min_size=0, max_size=40))
    def test_batch_push_matches_oracle(self, singles, batch):
        fast, oracle = EventHeap(capacity=2), ReferenceEventHeap()
        for i, t in enumerate(singles):
            fast.push(t, 0, i)
            oracle.push(t, 0, i)
        payloads = np.arange(1000, 1000 + len(batch))
        fast.push_batch(batch, 2, payloads)
        oracle.push_batch(batch, 2, payloads)
        n = len(singles) + len(batch)
        assert [fast.pop() for _ in range(n)] == [oracle.pop() for _ in range(n)]


class TestKernelCounters:
    def test_counters_start_at_zero(self):
        c = KernelCounters()
        assert c.total_scheduled == 0
        assert c.total_processed == 0
        assert c.batches == 0
        assert c.as_dict()["named"] == {}

    def test_named_counters_accumulate(self):
        c = KernelCounters()
        c.inc("ranks", 64)
        c.inc("ranks", 36)
        c.inc("checkpoints")
        assert c.named == {"ranks": 100, "checkpoints": 1}

    def test_kernel_tallies_by_kind(self):
        kernel = EventKernel()
        kernel.on("timer", lambda payload: None)
        kernel.on("compute", lambda payloads: None, batch=True)
        kernel.schedule(1.0, event_kind_code("timer"), None)
        kernel.schedule_batch(2.0, event_kind_code("compute"), [1, 2, 3])
        kernel.run()
        assert kernel.counters.scheduled_by_kind()["timer"] == 1
        assert kernel.counters.scheduled_by_kind()["compute"] == 3
        assert kernel.counters.processed_by_kind()["compute"] == 3
        assert kernel.counters.total_processed == 4
        assert kernel.counters.batches == 1


class TestEventKernel:
    def test_schedule_in_past_raises(self):
        kernel = EventKernel()
        kernel.on("timer", lambda payload: None)
        kernel.schedule(5.0, event_kind_code("timer"), None)
        kernel.run()
        assert kernel.now == 5.0
        with pytest.raises(SimulationError, match="in the past"):
            kernel.schedule(1.0, event_kind_code("timer"), None)

    def test_schedule_batch_in_past_rolls_back_slots(self):
        kernel = EventKernel()
        kernel.on("compute", lambda payloads: None)
        kernel.schedule(5.0, event_kind_code("compute"), None)
        kernel.run()
        with pytest.raises(SimulationError, match="in the past"):
            kernel.schedule_batch([6.0, 1.0], event_kind_code("compute"), [1, 2])
        assert len(kernel) == 0
        assert kernel.counters.scheduled_by_kind()["compute"] == 1

    def test_missing_handler_raises(self):
        kernel = EventKernel()
        kernel.schedule(1.0, event_kind_code("timer"), None)
        with pytest.raises(SimulationError, match="no handler"):
            kernel.run()

    def test_run_until_horizon_parks_clock(self):
        seen = []
        kernel = EventKernel()
        kernel.on("timer", seen.append)
        kernel.schedule(1.0, event_kind_code("timer"), "a")
        kernel.schedule(10.0, event_kind_code("timer"), "b")
        kernel.run(until=4.0)
        assert seen == ["a"]
        assert kernel.now == 4.0
        assert len(kernel) == 1
        kernel.run()
        assert seen == ["a", "b"] and kernel.now == 10.0

    def test_run_until_past_raises(self):
        kernel = EventKernel()
        kernel.on("timer", lambda payload: None)
        kernel.schedule(3.0, event_kind_code("timer"), None)
        kernel.run()
        with pytest.raises(SimulationError):
            kernel.run(until=1.0)

    def test_batched_kinds_dispatch_as_one_call(self):
        batches = []
        kernel = EventKernel()
        kernel.on("compute", lambda payloads: batches.append(list(payloads)),
                  batch=True)
        kernel.schedule_batch(2.0, event_kind_code("compute"), [10, 11, 12])
        kernel.schedule(2.0, event_kind_code("compute"), 13)
        kernel.schedule(3.0, event_kind_code("compute"), 14)
        kernel.run()
        assert batches == [[10, 11, 12, 13], [14]]
        assert kernel.counters.batches == 2

    def test_unbatched_handler_gets_single_payloads(self):
        seen = []
        kernel = EventKernel()
        kernel.on("compute", seen.append, batch=False)
        kernel.schedule_batch(1.0, event_kind_code("compute"), ["x", "y"])
        kernel.run()
        assert seen == ["x", "y"]
        assert kernel.counters.batches == 0

    def test_injected_rng_is_reproducible(self):
        draws = []

        def sampler(kernel):
            def handler(payload):
                draws.append(float(kernel.rng.uniform()))
            return handler

        results = []
        for _ in range(2):
            draws.clear()
            kernel = EventKernel(rng=1234)
            kernel.on("timer", sampler(kernel))
            for t in (1.0, 2.0, 3.0):
                kernel.schedule(t, event_kind_code("timer"), None)
            kernel.run()
            results.append(list(draws))
        assert results[0] == results[1]
        assert len(results[0]) == 3

    def test_rng_accepts_generator_instance(self):
        gen = np.random.default_rng(7)
        kernel = EventKernel(rng=gen)
        assert kernel.rng is gen

    def test_payload_slots_are_recycled(self):
        kernel = EventKernel()
        kernel.on("timer", lambda payload: None)
        code = event_kind_code("timer")
        for round_ in range(5):
            for t in range(10):
                kernel.schedule(kernel.now + t + 1.0, code, ("blob", round_))
            kernel.run()
        # Ten live slots at peak; the free list caps the table size.
        assert len(kernel._payloads) == 10

    def test_heap_class_swap_via_class_attribute(self, monkeypatch):
        monkeypatch.setattr(EventKernel, "heap_class", ReferenceEventHeap)
        kernel = EventKernel()
        assert isinstance(kernel.heap, ReferenceEventHeap)


class TestSimulatorTieBreakRegression:
    """Satellite bugfix: same-timestamp events preserve submission order
    across the old (reference) heap and the new array-backed heap."""

    @staticmethod
    def _scenario():
        sim = Simulator()
        order = []

        def worker(sim, tag, delay):
            yield sim.timeout(delay)
            order.append((tag, sim.now))

        # Deliberate timestamp collisions: three waves landing at t=1.0,
        # t=2.0 and t=1.0 again, interleaved at submission time.
        for i, delay in enumerate([1.0, 2.0, 1.0, 2.0, 1.0, 1.0]):
            sim.process(worker(sim, i, delay))
        sim.run()
        return order

    def test_submission_order_at_equal_timestamps(self):
        order = self._scenario()
        assert order == [(0, 1.0), (2, 1.0), (4, 1.0), (5, 1.0),
                         (1, 2.0), (3, 2.0)]

    def test_identical_on_both_heaps(self, monkeypatch):
        fast = self._scenario()
        monkeypatch.setattr(EventKernel, "heap_class", ReferenceEventHeap)
        assert self._scenario() == fast

    @settings(deadline=None, max_examples=25)
    @given(st.lists(st.floats(0.0, 5.0), min_size=1, max_size=30))
    def test_event_soup_identical_orderings_and_clocks(self, delays):
        def replay(heap_class):
            log = []
            original = EventKernel.heap_class
            EventKernel.heap_class = heap_class
            try:
                sim = Simulator()

                def worker(sim, tag, delay):
                    yield sim.timeout(delay)
                    log.append((tag, sim.now))
                    if tag % 3 == 0:
                        yield sim.timeout(delay)
                        log.append((tag, sim.now))

                for i, d in enumerate(delays):
                    sim.process(worker(sim, i, d))
                sim.run()
                return log, sim.now
            finally:
                EventKernel.heap_class = original

        assert replay(EventHeap) == replay(ReferenceEventHeap)

    def test_workflow_traces_byte_identical_across_heaps(
            self, tmp_path, monkeypatch):
        from repro.__main__ import _quickstart
        from repro.observability.tracer import Tracer
        from repro.workflow.driver import CoupledWorkflow

        def run_traced(path):
            config, trace = _quickstart("global", 6, 42)
            tracer = Tracer()
            CoupledWorkflow(config, trace, tracer=tracer).run()
            tracer.to_jsonl(path)
            return path.read_bytes()

        fast = run_traced(tmp_path / "fast.jsonl")
        monkeypatch.setattr(EventKernel, "heap_class", ReferenceEventHeap)
        oracle = run_traced(tmp_path / "oracle.jsonl")
        assert fast == oracle
        # Sanity: the trace is real JSONL with simulated timestamps.
        first = json.loads(fast.splitlines()[0])
        assert "ts" in first and "kind" in first


class TestAdapterIntegration:
    """The Simulator adapter exposes the kernel without changing semantics."""

    def test_simulator_owns_a_kernel(self):
        sim = Simulator()
        assert isinstance(sim.kernel, EventKernel)
        assert sim.kernel.heap.peek_time() == float("inf")

    def test_timeout_kinds_reach_the_counters(self):
        sim = Simulator()

        def proc(sim):
            yield sim.timeout(1.0)
            yield sim.timeout(1.0, kind="compute")
            yield sim.timeout(1.0, kind="staging")

        sim.process(proc(sim))
        sim.run()
        by_kind = sim.kernel.counters.processed_by_kind()
        assert by_kind["timer"] == 1
        assert by_kind["compute"] == 1
        assert by_kind["staging"] == 1
        assert by_kind["control"] >= 1  # process start + resumes

    def test_network_events_are_transfer_kind(self):
        sim = Simulator()
        net = Network(sim)
        net.add_link("sim", "staging", bandwidth=1e9, latency=1e-6)
        done = net.transfer("sim", "staging", 1e9)
        sim.run(done)
        assert sim.kernel.counters.processed_by_kind()["transfer"] >= 2

    def test_transfer_batch_equivalent_to_serial_admits(self):
        def run(batched):
            sim = Simulator()
            net = Network(sim)
            net.add_link("sim", "staging", bandwidth=1e9, latency=1e-6)
            sizes = [5e8, 5e8, 0.0, 2.5e8]
            if batched:
                events = net.transfer_batch("sim", "staging", sizes)
            else:
                events = [net.transfer("sim", "staging", s) for s in sizes]
            done = sim.all_of(events)
            flows = sim.run(done)
            assert net.active_flows == 0
            return [(f.finished_at, f.size) for f in flows], sim.now

        assert run(batched=True) == run(batched=False)

    def test_transfer_batch_rejects_negative_and_same_endpoint(self):
        sim = Simulator()
        net = Network(sim)
        net.add_link("sim", "staging", bandwidth=1e9)
        with pytest.raises(SimulationError):
            net.transfer_batch("sim", "staging", [1.0, -2.0])
        with pytest.raises(SimulationError):
            net.transfer_batch("sim", "sim", [1.0])

    def test_transfer_batch_uses_fewer_events_than_serial(self):
        def event_count(batched):
            sim = Simulator()
            net = Network(sim)
            net.add_link("sim", "staging", bandwidth=1e9)
            sizes = [1e8] * 64
            if batched:
                events = net.transfer_batch("sim", "staging", sizes)
            else:
                events = [net.transfer("sim", "staging", s) for s in sizes]
            sim.run(sim.all_of(events))
            return sim.kernel.counters.processed_by_kind()["transfer"]

        assert event_count(True) < event_count(False)

    def test_interrupt_edge_case_on_kernel_path(self):
        sim = Simulator()

        def sleeper(sim):
            try:
                yield sim.timeout(100.0, kind="compute")
            except Interrupt as i:
                return ("interrupted", i.cause, sim.now)

        def interrupter(sim, victim):
            yield sim.timeout(2.0)
            victim.interrupt("rebalance")

        victim = sim.process(sleeper(sim))
        sim.process(interrupter(sim, victim))
        sim.run()
        assert victim.value == ("interrupted", "rebalance", 2.0)
        # run() drains to exhaustion: the detached compute event still
        # popped (and was counted) even though its waiter was gone.
        assert len(sim.kernel) == 0
        assert sim.now == 100.0
        assert sim.kernel.counters.processed_by_kind()["compute"] == 1

    def test_machine_compute_batch_matches_scalar(self):
        from repro.hpc.machine import Machine

        sim = Simulator()
        machine = Machine(sim, node_count=2, cores_per_node=4,
                          memory_per_node=2**30, core_rate=1e4)
        work = np.array([0.0, 1e4, 5e5, 2.5e6])
        batch = machine.compute_batch(work, cores=8)
        assert batch.shape == work.shape
        for w, seconds in zip(work, batch):
            assert seconds == machine.compute_time(float(w), 8)

    def test_machine_compute_batch_validates(self):
        from repro.errors import ResourceError
        from repro.hpc.machine import Machine

        sim = Simulator()
        machine = Machine(sim, node_count=2, cores_per_node=4,
                          memory_per_node=2**30, core_rate=1e4)
        with pytest.raises(ResourceError):
            machine.compute_batch([1.0], cores=0)
        with pytest.raises(ResourceError):
            machine.compute_batch([-1.0], cores=4)

    def test_seeded_simulator_rng_injection(self):
        a = Simulator(rng=99).rng.uniform(size=4)
        b = Simulator(rng=99).rng.uniform(size=4)
        assert np.array_equal(a, b)
