"""Unit tests for the fluid-flow network model."""

import pytest

from repro.errors import SimulationError
from repro.hpc.event import Simulator
from repro.hpc.network import Network
from repro.hpc.topology import node_name, staging_uplink, torus3d
from repro.units import GiB, MiB


@pytest.fixture()
def sim():
    return Simulator()


def simple_net(sim, bandwidth=100.0, latency=0.0):
    net = Network(sim)
    net.add_link("a", "b", bandwidth=bandwidth, latency=latency)
    return net


class TestSingleFlow:
    def test_transfer_time_is_size_over_bandwidth(self, sim):
        net = simple_net(sim, bandwidth=100.0)
        done = net.transfer("a", "b", nbytes=500.0)
        sim.run(done)
        assert sim.now == pytest.approx(5.0)

    def test_latency_added_once(self, sim):
        net = simple_net(sim, bandwidth=100.0, latency=2.0)
        done = net.transfer("a", "b", nbytes=100.0)
        sim.run(done)
        assert sim.now == pytest.approx(3.0)

    def test_zero_byte_transfer_costs_latency_only(self, sim):
        net = simple_net(sim, bandwidth=100.0, latency=1.5)
        done = net.transfer("a", "b", nbytes=0.0)
        sim.run(done)
        assert sim.now == pytest.approx(1.5)

    def test_negative_size_rejected(self, sim):
        net = simple_net(sim)
        with pytest.raises(SimulationError):
            net.transfer("a", "b", nbytes=-1.0)

    def test_transfer_value_is_transfer_record(self, sim):
        net = simple_net(sim, bandwidth=10.0)

        def proc(sim):
            xfer = yield net.transfer("a", "b", nbytes=50.0)
            return xfer

        p = sim.process(proc(sim))
        sim.run()
        assert p.value.size == 50.0
        assert p.value.elapsed == pytest.approx(5.0)

    def test_no_route_raises(self, sim):
        net = simple_net(sim)
        with pytest.raises(SimulationError):
            net.transfer("a", "zzz", nbytes=10.0)


class TestBandwidthSharing:
    def test_two_equal_flows_halve_rate(self, sim):
        net = simple_net(sim, bandwidth=100.0)
        d1 = net.transfer("a", "b", nbytes=500.0)
        d2 = net.transfer("a", "b", nbytes=500.0)
        sim.run(sim.all_of([d1, d2]))
        # Each gets 50 B/s -> both finish at t=10.
        assert sim.now == pytest.approx(10.0)

    def test_short_flow_finishes_then_long_speeds_up(self, sim):
        net = simple_net(sim, bandwidth=100.0)
        long = net.transfer("a", "b", nbytes=1000.0)
        short = net.transfer("a", "b", nbytes=100.0)
        finish = {}

        def watch(sim, evt, tag):
            yield evt
            finish[tag] = sim.now

        sim.process(watch(sim, long, "long"))
        sim.process(watch(sim, short, "short"))
        sim.run()
        # Shared 50/50 until short drains 100 B at t=2; long then has 900 B
        # left at full rate -> 2 + 9 = 11.
        assert finish["short"] == pytest.approx(2.0)
        assert finish["long"] == pytest.approx(11.0)

    def test_late_join_slows_existing_flow(self, sim):
        net = simple_net(sim, bandwidth=100.0)
        first = net.transfer("a", "b", nbytes=1000.0)

        def join_later(sim):
            yield sim.timeout(5.0)
            second = net.transfer("a", "b", nbytes=250.0)
            yield second
            return sim.now

        j = sim.process(join_later(sim))
        sim.run(first)
        # First runs alone 0-5 (500 B done), shares 5-10 (second drains its
        # 250 B at 50 B/s), then finishes the last 250 B alone by t=12.5.
        assert j.value == pytest.approx(10.0)
        assert sim.now == pytest.approx(12.5)

    def test_bytes_accounting(self, sim):
        net = simple_net(sim, bandwidth=100.0)
        d1 = net.transfer("a", "b", nbytes=300.0)
        d2 = net.transfer("a", "b", nbytes=200.0)
        sim.run(sim.all_of([d1, d2]))
        assert net.total_bytes_moved == pytest.approx(500.0)
        assert net.link_between("a", "b").bytes_carried == pytest.approx(500.0)


class TestMultiLinkRoutes:
    def test_bottleneck_limits_rate(self, sim):
        net = Network(sim)
        net.add_link("a", "m", bandwidth=100.0)
        net.add_link("m", "b", bandwidth=10.0)
        done = net.transfer("a", "b", nbytes=100.0)
        sim.run(done)
        assert sim.now == pytest.approx(10.0)

    def test_cross_traffic_on_shared_link(self, sim):
        # Flows a->b and c->b share only the m->b link.
        net = Network(sim)
        net.add_link("a", "m", bandwidth=1000.0)
        net.add_link("c", "m", bandwidth=1000.0)
        net.add_link("m", "b", bandwidth=100.0)
        d1 = net.transfer("a", "b", nbytes=500.0)
        d2 = net.transfer("c", "b", nbytes=500.0)
        sim.run(sim.all_of([d1, d2]))
        assert sim.now == pytest.approx(10.0)

    def test_max_min_fairness_disjoint_bottlenecks(self, sim):
        # Flow 1 uses a narrow private link; flow 2 shares the wide link.
        # Max-min: flow 1 is capped at 10, flow 2 gets the remaining 90.
        net = Network(sim)
        net.add_link("x", "m", bandwidth=10.0)
        net.add_link("m", "y", bandwidth=100.0)
        net.add_link("w", "m", bandwidth=1000.0)
        d1 = net.transfer("x", "y", nbytes=100.0)  # rate 10 -> t=10
        d2 = net.transfer("w", "y", nbytes=450.0)  # rate 90 -> t=5
        finish = {}

        def watch(sim, evt, tag):
            yield evt
            finish[tag] = sim.now

        sim.process(watch(sim, d1, "narrow"))
        sim.process(watch(sim, d2, "wide"))
        sim.run()
        assert finish["narrow"] == pytest.approx(10.0)
        assert finish["wide"] == pytest.approx(5.0)

    def test_estimate_matches_uncontended_run(self, sim):
        net = Network(sim)
        net.add_link("a", "m", bandwidth=100.0, latency=0.5)
        net.add_link("m", "b", bandwidth=50.0, latency=0.5)
        est = net.estimate_transfer_time("a", "b", 100.0)
        done = net.transfer("a", "b", 100.0)
        sim.run(done)
        assert sim.now == pytest.approx(est)


class TestTopologies:
    def test_staging_uplink_capacity_is_min(self, sim):
        net = staging_uplink(sim, sim_injection_bw=10 * GiB,
                             staging_ingest_bw=2 * GiB, latency=1e-6)
        assert net.link_between("sim", "staging").bandwidth == 2 * GiB

    def test_staging_uplink_rejects_bad_bw(self, sim):
        with pytest.raises(SimulationError):
            staging_uplink(sim, sim_injection_bw=0, staging_ingest_bw=1, latency=0)

    def test_torus_node_and_edge_counts(self, sim):
        net = torus3d(sim, (4, 4, 4), link_bandwidth=425 * MiB, link_latency=1e-6)
        assert net.graph.number_of_nodes() == 64
        # 3 links per node in a wrap-around torus with all dims > 2.
        assert net.graph.number_of_edges() == 3 * 64

    def test_torus_degenerate_dimension(self, sim):
        net = torus3d(sim, (4, 4, 1), link_bandwidth=1.0, link_latency=0.0)
        assert net.graph.number_of_nodes() == 16

    def test_torus_transfer_routes_multi_hop(self, sim):
        net = torus3d(sim, (4, 1, 1), link_bandwidth=100.0, link_latency=0.0)
        done = net.transfer(node_name((0, 0, 0)), node_name((2, 0, 0)), nbytes=100.0)
        sim.run(done)
        assert sim.now == pytest.approx(1.0)  # bottleneck 100 B/s, 2 hops fluid
