"""Tests for the span profiler: nesting, buffered replay, merge,
renderers, budgets, and the profiled run's bit-identity guarantee."""

import itertools
import json

import pytest

from repro.errors import ObservabilityError
from repro.hpc.systems import titan
from repro.observability import (
    PROFILE_SPANS,
    Profiler,
    SpanStat,
    check_budgets,
    load_budgets,
    merge_worker_profiles,
    render_budget_report,
    render_hot_spans,
    render_profile,
    unregistered_spans,
)
from repro.observability.budgets import BUDGETS_SCHEMA
from repro.workflow import Mode, WorkflowConfig, run_workflow
from repro.workload import SyntheticAMRConfig, synthetic_amr_trace


def _ticking():
    """A profiler whose clock returns 0.0, 1.0, 2.0, ... per read."""
    counter = itertools.count()
    return Profiler(clock=lambda: float(next(counter)))


class TestSpanRecording:
    def test_nested_spans_attribute_cum_and_self(self):
        p = _ticking()
        with p.span("a"):            # enter a @ t=0
            with p.span("b"):        # enter b @ t=1, exit @ t=2
                pass
            with p.span("b"):        # enter b @ t=3, exit @ t=4
                pass
        # exit a @ t=5: cum 5, children consumed 2, self 3.
        assert p.paths() == ["a", "a/b"]
        a = p.get("a")
        assert (a.count, a.cum_seconds, a.self_seconds) == (1, 5.0, 3.0)
        b = p.get("a/b")
        assert (b.count, b.cum_seconds, b.self_seconds) == (2, 2.0, 2.0)
        assert p.total_seconds() == 5.0
        assert len(p) == 2

    def test_sibling_roots_each_get_their_own_path(self):
        p = _ticking()
        with p.span("a"):
            pass
        with p.span("b"):
            pass
        assert p.paths() == ["a", "b"]
        assert p.total_seconds() == 2.0

    def test_current_path_tracks_the_open_stack(self):
        p = _ticking()
        assert p.current_path == ""
        with p.span("a"):
            assert p.current_path == "a"
            with p.span("b"):
                assert p.current_path == "a/b"
            assert p.current_path == "a"
        assert p.current_path == ""

    def test_open_span_not_reported_until_it_exits(self):
        p = _ticking()
        span = p.span("a")
        span.__enter__()
        assert p.paths() == []
        assert len(p) == 0
        assert p.dump() == {}
        span.__exit__(None, None, None)
        assert p.paths() == ["a"]

    def test_span_name_must_be_a_path_segment(self):
        p = Profiler()
        with pytest.raises(ObservabilityError):
            p.span("")
        with pytest.raises(ObservabilityError):
            p.span("a/b")

    def test_get_returns_none_for_unknown_path(self):
        assert Profiler().get("nope") is None

    def test_stat_objects_expose_slots(self):
        stat = SpanStat()
        assert (stat.count, stat.cum_seconds, stat.self_seconds) == (0, 0.0, 0.0)


class TestReusableHandles:
    def test_cached_handle_reentered_per_call(self):
        p = _ticking()
        handle = p.span("x")
        for _ in range(3):
            with handle:
                pass
        assert p.get("x").count == 3

    def test_shared_handle_recursion_nests_by_order(self):
        p = _ticking()
        handle = p.span("x")
        with handle:
            with handle:
                pass
        assert p.paths() == ["x", "x/x"]
        assert p.get("x").count == 1
        assert p.get("x/x").count == 1

    def test_handle_nests_under_whatever_is_open(self):
        p = _ticking()
        handle = p.span("inner")
        with p.span("a"):
            with handle:
                pass
        with p.span("b"):
            with handle:
                pass
        assert p.paths() == ["a", "a/inner", "b", "b/inner"]


class TestOutOfOrderDetection:
    def test_mismatched_exit_raises_at_read_time(self):
        p = _ticking()
        a = p.span("a")
        b = p.span("b")
        a.__enter__()
        b.__enter__()
        a.__exit__(None, None, None)  # b is still the innermost span
        with pytest.raises(ObservabilityError, match="closed out of order"):
            p.dump()

    def test_exit_without_any_open_span_raises(self):
        p = _ticking()
        stray = p.span("a")
        stray.__exit__(None, None, None)
        with pytest.raises(ObservabilityError, match="closed out of order"):
            p.paths()


class TestClear:
    def test_clear_zeroes_recorded_aggregates(self):
        p = _ticking()
        with p.span("a"):
            pass
        p.clear()
        assert len(p) == 0
        assert p.dump() == {}
        assert p.total_seconds() == 0.0

    def test_open_span_keeps_recording_across_clear(self):
        p = _ticking()
        span = p.span("a")
        span.__enter__()       # t=0
        p.clear()
        span.__exit__(None, None, None)  # t=1
        assert p.get("a").count == 1
        assert p.get("a").cum_seconds == 1.0

    def test_recording_resumes_after_clear(self):
        p = _ticking()
        handle = p.span("a")
        with handle:
            pass
        p.clear()
        with handle:
            pass
        assert p.get("a").count == 1


class TestDump:
    def test_dump_is_plain_sorted_data(self):
        p = _ticking()
        with p.span("b"):
            pass
        with p.span("a"):
            pass
        dump = p.dump()
        assert list(dump) == ["a", "b"]
        assert dump["a"] == {
            "count": 1, "cum_seconds": 1.0, "self_seconds": 1.0,
        }
        assert json.loads(json.dumps(dump)) == dump

    def test_dump_survives_a_buffer_flush_midstream(self):
        p = _ticking()
        p._flush_at = 4  # force a drain during recording
        with p.span("a"):
            for _ in range(5):
                with p.span("b"):
                    pass
        assert p.get("a/b").count == 5
        assert p.get("a").count == 1


class TestMergeWorkerProfiles:
    def _dump(self, count=1, cum=2.0, self_seconds=1.0, path="sweep.point"):
        return {path: {"count": count, "cum_seconds": cum,
                       "self_seconds": self_seconds}}

    def test_counts_and_seconds_sum_into_parent(self):
        parent = _ticking()
        with parent.span("sweep.point"):
            pass
        merged = merge_worker_profiles(
            parent, [self._dump(count=2, cum=4.0, self_seconds=3.0)]
        )
        assert merged is parent
        stat = parent.get("sweep.point")
        assert stat.count == 3
        assert stat.cum_seconds == 5.0
        assert stat.self_seconds == 4.0

    def test_merge_is_order_independent(self):
        d1 = self._dump(count=1, cum=1.0, self_seconds=1.0)
        d2 = self._dump(count=2, cum=5.0, self_seconds=2.0, path="cache.lookup")
        a = merge_worker_profiles(Profiler(), [d1, d2]).dump()
        b = merge_worker_profiles(Profiler(), [d2, d1]).dump()
        assert a == b

    def test_empty_iterable_is_a_noop(self):
        parent = _ticking()
        with parent.span("a"):
            pass
        before = parent.dump()
        assert merge_worker_profiles(parent, []).dump() == before

    def test_empty_span_path_rejected(self):
        with pytest.raises(ObservabilityError, match="empty span path"):
            merge_worker_profiles(
                Profiler(), [{"": {"count": 1, "cum_seconds": 1.0,
                                   "self_seconds": 1.0}}]
            )

    def test_malformed_snapshot_rejected(self):
        with pytest.raises(ObservabilityError, match="malformed"):
            merge_worker_profiles(
                Profiler(), [{"sweep.point": {"count": 1}}]
            )
        with pytest.raises(ObservabilityError, match="malformed"):
            merge_worker_profiles(
                Profiler(),
                [{"sweep.point": {"count": "x", "cum_seconds": 1.0,
                                  "self_seconds": 1.0}}],
            )


class TestRenderers:
    def _profiler(self):
        p = _ticking()
        with p.span("a"):          # cum 5, self 3
            with p.span("b"):      # cum 2 across 2 calls
                pass
            with p.span("b"):
                pass
        return p

    def test_tree_indents_children_under_hottest_first(self):
        p = self._profiler()
        with p.span("c"):
            pass
        text = render_profile(p)
        lines = text.splitlines()
        assert lines[0].split() == ["span", "count", "cum", "(s)",
                                    "self", "(s)", "cum%"]
        body = lines[2:]
        # Roots ordered by cumulative seconds: a (5s) before c (1s),
        # with b indented under a.
        assert body[0].startswith("a ")
        assert body[1].startswith("  b")
        assert body[2].startswith("c ")

    def test_tree_percentages_default_to_root_total(self):
        text = render_profile(self._profiler())
        a_row = next(l for l in text.splitlines() if l.startswith("a "))
        assert a_row.rstrip().endswith("100.0")

    def test_tree_total_seconds_override_sets_denominator(self):
        text = render_profile(self._profiler(), total_seconds=10.0)
        a_row = next(l for l in text.splitlines() if l.startswith("a "))
        assert a_row.rstrip().endswith("50.0")

    def test_renderers_accept_dumps_and_empty_sources(self):
        p = self._profiler()
        assert render_profile(p.dump()) == render_profile(p)
        assert render_profile({}) == "(no spans recorded)"
        assert render_hot_spans({}) == "(no spans recorded)"

    def test_hot_list_orders_by_self_seconds(self):
        text = render_hot_spans(self._profiler())
        rows = [row.rstrip() for row in text.splitlines()[2:]]
        assert rows[0].endswith("a")
        assert rows[1].endswith("a/b")

    def test_hot_list_top_limits_rows(self):
        text = render_hot_spans(self._profiler(), top=1)
        assert len(text.splitlines()) == 3  # header, rule, one row

    def test_hot_list_rejects_nonpositive_top(self):
        with pytest.raises(ObservabilityError, match="top must be"):
            render_hot_spans(self._profiler(), top=0)

    def test_unregistered_spans_flags_unknown_names_only(self):
        p = _ticking()
        with p.span("workflow.run"):
            with p.span("mystery.section"):
                pass
        assert unregistered_spans(p) == ["mystery.section"]
        assert unregistered_spans({}) == []


class TestSpanRegistry:
    def test_names_are_namespaced_and_described(self):
        for name, description in PROFILE_SPANS.items():
            assert "." in name and "/" not in name
            assert description


class TestBudgets:
    def _manifest(self, **overrides):
        manifest = {
            "schema": BUDGETS_SCHEMA,
            "workload": {"mode": "global", "steps": 20, "seed": 42},
            "budgets": {"workflow.run": 2.0, "workflow.run/sim.run": 1.5},
        }
        manifest.update(overrides)
        return manifest

    def test_load_accepts_dict_json_text_and_path(self, tmp_path):
        manifest = self._manifest()
        assert load_budgets(manifest)["budgets"] == manifest["budgets"]
        assert load_budgets(json.dumps(manifest)) == manifest
        path = tmp_path / "budgets.json"
        path.write_text(json.dumps(manifest))
        assert load_budgets(path) == manifest
        assert load_budgets(str(path)) == manifest

    def test_load_rejects_wrong_schema(self):
        with pytest.raises(ObservabilityError, match="schema"):
            load_budgets(self._manifest(schema="repro.budgets/99"))

    def test_load_rejects_invalid_json(self):
        with pytest.raises(ObservabilityError, match="not a budget manifest"):
            load_budgets("{nope")

    def test_load_rejects_missing_budgets(self):
        with pytest.raises(ObservabilityError, match="no 'budgets'"):
            load_budgets(self._manifest(budgets={}))

    def test_load_rejects_unregistered_span_names(self):
        with pytest.raises(ObservabilityError, match="unregistered span"):
            load_budgets(self._manifest(budgets={"workflow.run/nope": 1.0}))

    def test_load_rejects_nonpositive_ceilings(self):
        with pytest.raises(ObservabilityError, match="positive number"):
            load_budgets(self._manifest(budgets={"workflow.run": 0}))
        with pytest.raises(ObservabilityError, match="positive number"):
            load_budgets(self._manifest(budgets={"workflow.run": "fast"}))

    def test_check_passes_a_profile_within_ceilings(self):
        profile = {
            "workflow.run": {"count": 1, "cum_seconds": 0.5,
                             "self_seconds": 0.1},
            "workflow.run/sim.run": {"count": 1, "cum_seconds": 0.4,
                                     "self_seconds": 0.4},
        }
        assert check_budgets(profile, self._manifest()) == []

    def test_check_names_the_overrun_span(self):
        profile = {
            "workflow.run": {"count": 1, "cum_seconds": 9.0,
                             "self_seconds": 9.0},
            "workflow.run/sim.run": {"count": 1, "cum_seconds": 0.1,
                                     "self_seconds": 0.1},
        }
        violations = check_budgets(profile, self._manifest())
        assert [v.path for v in violations] == ["workflow.run"]
        assert violations[0].measured_seconds == 9.0
        assert "exceeds ceiling" in violations[0].describe()

    def test_check_flags_a_missing_guarded_span(self):
        violations = check_budgets({}, self._manifest())
        assert {v.path for v in violations} == {
            "workflow.run", "workflow.run/sim.run",
        }
        assert all(v.measured_seconds is None for v in violations)
        assert "missing from the profile" in violations[0].describe()

    def test_report_marks_status_per_guarded_path(self):
        profile = {
            "workflow.run": {"count": 1, "cum_seconds": 9.0,
                             "self_seconds": 9.0},
        }
        report = render_budget_report(profile, self._manifest())
        assert "FAIL" in report and "MISSING" in report
        assert "0/2 span budgets satisfied (2 VIOLATED)" in report
        ok = render_budget_report(
            {
                "workflow.run": {"count": 1, "cum_seconds": 0.1,
                                 "self_seconds": 0.1},
                "workflow.run/sim.run": {"count": 1, "cum_seconds": 0.1,
                                         "self_seconds": 0.1},
            },
            self._manifest(),
        )
        assert "2/2 span budgets satisfied" in ok
        assert "FAIL" not in ok

    def test_shipped_manifest_loads_and_pins_the_quickstart(self):
        manifest = load_budgets("benchmarks/budgets.json")
        assert manifest["workload"] == {"mode": "global", "steps": 20,
                                        "seed": 42}


def _trace(steps=8):
    return synthetic_amr_trace(
        SyntheticAMRConfig(steps=steps, nranks=64, base_cells=2e7,
                           sim_cost_per_cell=1.0, growth=1.5, seed=0)
    )


def _config():
    return WorkflowConfig(mode=Mode.GLOBAL, sim_cores=1024, staging_cores=64,
                          spec=titan(), analysis_cost_per_cell=0.035)


class TestProfiledWorkflow:
    @pytest.fixture(scope="class")
    def profiled_run(self):
        profiler = Profiler()
        result = run_workflow(_config(), _trace(), profiler=profiler)
        return profiler, result

    def test_profiled_run_is_bitwise_identical(self, profiled_run):
        _profiler, instrumented = profiled_run
        plain = run_workflow(_config(), _trace())
        assert plain == instrumented

    def test_run_opens_every_per_step_span(self, profiled_run):
        profiler, result = profiled_run
        decide = "workflow.run/sim.run/workflow.decide"
        assert profiler.get(decide).count == len(result.steps)
        assert profiler.get(f"{decide}/engine.adapt").count == len(result.steps)
        assert profiler.get(f"{decide}/monitor.snapshot").count == len(
            result.steps
        )

    def test_every_recorded_name_is_registered(self, profiled_run):
        profiler, _result = profiled_run
        assert unregistered_spans(profiler) == []

    def test_attribution_covers_the_run(self, profiled_run):
        profiler, _result = profiled_run
        run = profiler.get("workflow.run")
        sim = profiler.get("workflow.run/sim.run")
        assert run.count == 1
        # The event loop dominates the run's wall time.
        assert 0.0 < sim.cum_seconds <= run.cum_seconds


class TestMergeDuplicateProfileDumps:
    """Profile dumps are deltas too: re-delivery doubles every tally."""

    def test_duplicate_dump_doubles_counts_and_seconds(self):
        dump = {"sweep.point": {"count": 2, "cum_seconds": 4.0,
                                "self_seconds": 3.0}}
        parent = merge_worker_profiles(Profiler(), [dump, dump])
        stat = parent.get("sweep.point")
        assert stat.count == 4
        assert stat.cum_seconds == 8.0
        assert stat.self_seconds == 6.0

    def test_duplicate_merge_into_live_parent_stats(self):
        parent = _ticking()
        with parent.span("sweep.point"):
            pass
        base = parent.get("sweep.point").count
        dump = {"sweep.point": {"count": 1, "cum_seconds": 1.0,
                                "self_seconds": 1.0}}
        merge_worker_profiles(parent, [dump])
        merge_worker_profiles(parent, [dump])
        assert parent.get("sweep.point").count == base + 2
