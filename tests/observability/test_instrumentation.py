"""End-to-end instrumentation: a traced workflow run emits a coherent,
causally ordered event stream without perturbing the run itself."""

import pytest

from repro.hpc.systems import titan
from repro.observability import (
    EVENT_KINDS,
    METRIC_NAMES,
    QUANTITIES,
    MetricsRegistry,
    PredictionLedger,
    Tracer,
)
from repro.observability.events import (
    ADAPT_DECISION,
    MONITOR_SAMPLE,
    STAGING_INGEST,
    STAGING_JOB_END,
    STAGING_JOB_START,
    STAGING_SUBMIT,
    STEP_END,
    STEP_START,
)
from repro.workflow import Mode, WorkflowConfig, run_workflow
from repro.workload import SyntheticAMRConfig, synthetic_amr_trace


def _trace(steps=10):
    return synthetic_amr_trace(
        SyntheticAMRConfig(steps=steps, nranks=64, base_cells=2e7,
                           sim_cost_per_cell=1.0, growth=1.5, seed=0)
    )


def _config(mode=Mode.GLOBAL):
    return WorkflowConfig(mode=mode, sim_cores=1024, staging_cores=64,
                          spec=titan(), analysis_cost_per_cell=0.035)


@pytest.fixture(scope="module")
def traced_run():
    tracer = Tracer()
    metrics = MetricsRegistry()
    ledger = PredictionLedger()
    result = run_workflow(_config(), _trace(), tracer=tracer,
                          metrics=metrics, ledger=ledger)
    return tracer, metrics, ledger, result


class TestEventStream:
    def test_every_step_has_boundaries(self, traced_run):
        tracer, _metrics, _ledger, result = traced_run
        assert len(tracer.events(kind=STEP_START)) == len(result.steps)
        assert len(tracer.events(kind=STEP_END)) == len(result.steps)

    def test_one_decision_per_sampled_step_with_inputs(self, traced_run):
        tracer, _metrics, _ledger, result = traced_run
        decisions = tracer.events(kind=ADAPT_DECISION)
        # monitor_interval defaults to 1: every step is sampled.
        assert len(decisions) == len(result.steps)
        for event in decisions:
            for key in ("est_insitu_time", "est_intransit_time",
                        "est_intransit_remaining", "factor", "placement",
                        "staging_cores"):
                assert key in event.fields

    def test_monitor_sample_precedes_its_decision(self, traced_run):
        tracer, _metrics, _ledger, _result = traced_run
        for decision in tracer.events(kind=ADAPT_DECISION):
            samples = tracer.events(kind=MONITOR_SAMPLE, step=decision.step)
            assert samples and samples[0].seq < decision.seq

    def test_staging_lifecycle_is_causally_ordered(self, traced_run):
        tracer, _metrics, _ledger, _result = traced_run
        submits = {e.fields["job_id"]: e for e in tracer.events(kind=STAGING_SUBMIT)}
        assert submits, "expected at least one in-transit placement"
        for kind in (STAGING_INGEST, STAGING_JOB_START, STAGING_JOB_END):
            for event in tracer.events(kind=kind):
                submit = submits[event.fields["job_id"]]
                assert submit.seq < event.seq
                assert submit.ts <= event.ts
        for end in tracer.events(kind=STAGING_JOB_END):
            starts = [e for e in tracer.events(kind=STAGING_JOB_START)
                      if e.fields["job_id"] == end.fields["job_id"]]
            assert starts and starts[0].ts <= end.ts

    def test_all_emitted_kinds_are_registered(self, traced_run):
        tracer, _metrics, _ledger, _result = traced_run
        assert tracer.kinds_seen() <= set(EVENT_KINDS)

    def test_all_published_metrics_are_registered(self, traced_run):
        _tracer, metrics, _ledger, _result = traced_run
        assert set(metrics.names()) <= set(METRIC_NAMES)

    def test_timestamps_are_monotone_in_seq(self, traced_run):
        tracer, _metrics, _ledger, _result = traced_run
        events = tracer.events()
        assert all(a.ts <= b.ts for a, b in zip(events, events[1:]))

    def test_jsonl_roundtrip_of_a_real_run(self, traced_run, tmp_path):
        from repro.observability import read_jsonl

        tracer, _metrics, _ledger, _result = traced_run
        path = tmp_path / "run.jsonl"
        tracer.to_jsonl(path)
        assert read_jsonl(path) == tracer.events()


class TestZeroOverheadPath:
    def test_uninstrumented_run_is_bitwise_identical(self, traced_run):
        _tracer, _metrics, _ledger, instrumented = traced_run
        plain = run_workflow(_config(), _trace())
        assert plain == instrumented

    def test_disabled_tracer_records_nothing_and_changes_nothing(self, traced_run):
        _tracer, _metrics, _ledger, instrumented = traced_run
        tracer = Tracer(enabled=False)
        result = run_workflow(_config(), _trace(), tracer=tracer)
        assert len(tracer) == 0
        assert result == instrumented

    def test_ledger_only_run_is_bitwise_identical(self, traced_run):
        _tracer, _metrics, _ledger, instrumented = traced_run
        result = run_workflow(_config(), _trace(), ledger=PredictionLedger())
        assert result == instrumented


class TestLedgerStream:
    def test_all_quantities_are_registered(self, traced_run):
        _tracer, _metrics, ledger, _result = traced_run
        assert ledger.quantities_seen() <= set(QUANTITIES)

    def test_every_dispatched_step_predicts_and_resolves(self, traced_run):
        _tracer, _metrics, ledger, result = traced_run
        # monitor_interval=1: every step yields fresh decisions, so every
        # prediction (except the final step's next-sim-time forecast)
        # meets its realization.
        assert len(ledger) > 0
        assert ledger.pending_count() == ledger.pending_count("sim_step_time")
        assert ledger.pending_count("sim_step_time") <= 1
        assert ledger.unmatched == 0

    def test_placements_scored_for_every_singular_placement(self, traced_run):
        _tracer, _metrics, ledger, result = traced_run
        singular = [m for m in result.steps
                    if m.placement.value in ("in_situ", "in_transit")]
        assert len(ledger.placements) == len(singular)
        assert all(p.scored for p in ledger.placements)

    def test_placement_costs_are_finite_and_nonnegative(self, traced_run):
        _tracer, _metrics, ledger, _result = traced_run
        for p in ledger.placements:
            assert p.chosen_cost >= 0
            assert p.alt_cost >= 0
            assert p.regret >= 0

    def test_prediction_timestamps_precede_realizations(self, traced_run):
        _tracer, _metrics, ledger, _result = traced_run
        for record in ledger.resolved_records():
            assert record.predicted_at <= record.realized_at

    def test_intransit_predictions_match_job_count(self, traced_run):
        tracer, _metrics, ledger, _result = traced_run
        submits = tracer.events(kind=STAGING_SUBMIT)
        assert len(ledger.records("intransit_time")) == len(submits)
        assert len(ledger.records("transfer_time")) == len(submits)


class TestMetricsConsistency:
    def test_counters_match_result_aggregates(self, traced_run):
        tracer, metrics, _ledger, result = traced_run
        values = metrics.as_dict()
        assert values["workflow.steps"] == len(result.steps)
        assert values["engine.decisions"] == len(
            tracer.events(kind=ADAPT_DECISION)
        )
        assert values["staging.bytes_ingested"] == pytest.approx(
            result.data_moved_bytes
        )
        assert values["staging.jobs_completed"] == len(
            tracer.events(kind=STAGING_JOB_END)
        )
