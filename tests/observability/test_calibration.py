"""Unit tests for the calibration audit."""

import pytest

from repro.observability import (
    PredictionLedger,
    calibrate,
    calibration_report,
    placement_regret,
)


def _ledger_with_errors(rels):
    """A ledger whose insitu_time records have the given relative errors."""
    ledger = PredictionLedger()
    for step, rel in enumerate(rels):
        ledger.predict("insitu_time", step, (1.0 + rel) * 10.0)
        ledger.resolve("insitu_time", step, 10.0)
    return ledger


class TestCalibrate:
    def test_bias_and_mape(self):
        stats = calibrate(_ledger_with_errors([0.1, -0.1, 0.2]))
        cal = stats["insitu_time"]
        assert cal.count == 3
        assert cal.bias_pct == pytest.approx(100 * (0.1 - 0.1 + 0.2) / 3)
        assert cal.mape_pct == pytest.approx(100 * (0.1 + 0.1 + 0.2) / 3)
        assert cal.max_ape_pct == pytest.approx(20.0)

    def test_ema_curve_smooths_in_observation_order(self):
        stats = calibrate(_ledger_with_errors([0.5, 0.0]), alpha=0.5)
        curve = stats["insitu_time"].ema_curve
        assert curve == pytest.approx((50.0, 25.0))
        assert stats["insitu_time"].final_ema_pct == pytest.approx(25.0)

    def test_pending_and_skipped_are_counted_not_scored(self):
        ledger = PredictionLedger()
        ledger.predict("transfer_time", 0, 1.0)  # stays pending
        ledger.predict("transfer_time", 1, 1.0)
        ledger.resolve("transfer_time", 1, 0.0)  # realized 0: no rel error
        cal = calibrate(ledger)["transfer_time"]
        assert cal.count == 0
        assert cal.pending == 1
        assert cal.skipped == 1
        assert cal.bias_pct == 0.0

    def test_empty_ledger_gives_empty_stats(self):
        assert calibrate(PredictionLedger()) == {}


class TestPlacementRegret:
    def test_summary_over_scored_outcomes(self):
        ledger = PredictionLedger()
        for step, (chosen, block, finished) in enumerate(
            [("in_transit", 0.0, 5.0), ("in_transit", 3.0, 25.0)]
        ):
            ledger.record_placement(
                step, chosen, est_insitu=1.0, est_intransit=2.0,
                insitu_true=1.0, backlog_true=0.0, service_true=2.0,
                dispatched_at=float(step),
            )
            ledger.resolve_placement(step, block_seconds=block,
                                     finished_at=finished)
        ledger.finalize(sim_end=20.0)
        summary = placement_regret(ledger)
        assert summary.decisions == 2
        assert summary.scored == 2
        # Step 0 hid entirely; step 1 paid 3s stall + 5s tail vs 1s in-situ.
        assert summary.flips == 1
        assert summary.total_regret_seconds == pytest.approx(7.0)
        assert summary.worst_step == 1
        assert summary.worst_regret_seconds == pytest.approx(7.0)
        assert summary.flip_fraction == pytest.approx(0.5)

    def test_empty_ledger_summary(self):
        summary = placement_regret(PredictionLedger())
        assert summary.decisions == 0
        assert summary.flip_fraction == 0.0
        assert summary.worst_step is None


class TestReport:
    def test_report_contains_table_and_regret_block(self):
        ledger = _ledger_with_errors([0.1, -0.2])
        ledger.record_placement(
            0, "in_situ", est_insitu=1.0, est_intransit=2.0,
            insitu_true=1.0, backlog_true=0.0, service_true=1.0,
            dispatched_at=0.0,
        )
        ledger.resolve_placement(0, realized_insitu=1.0)
        ledger.finalize(sim_end=100.0)
        report = calibration_report(ledger)
        assert "insitu_time" in report
        assert "MAPE%" in report
        assert "placement regret" in report
        assert "decisions scored : 1/1" in report

    def test_empty_report_renders(self):
        report = calibration_report(PredictionLedger())
        assert "(no predictions recorded)" in report
        assert "(no placement decisions recorded)" in report

    def test_unmatched_note_appears(self):
        ledger = PredictionLedger()
        ledger.resolve("insitu_time", 0, 1.0)
        assert "no\nmatching prediction" not in calibration_report(ledger)
        assert "1 realized values" in calibration_report(ledger)

    def test_near_zero_errors_render_a_flat_strip(self):
        # Float residue must not be normalized into a fake ramp.
        ledger = PredictionLedger()
        for step in range(4):
            ledger.predict("transfer_time", step, 1.0 + 1e-14 * step)
            ledger.resolve("transfer_time", step, 1.0)
        report = calibration_report(ledger)
        row = next(line for line in report.splitlines()
                   if line.startswith("transfer_time"))
        assert "@" not in row
