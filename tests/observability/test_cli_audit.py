"""Smoke tests for the ``repro audit`` CLI subcommand."""

import json

from repro.__main__ import SUBCOMMANDS, main
from repro.observability import SNAPSHOT_SCHEMA, load_snapshot


class TestAuditCommand:
    def test_prints_calibration_table_and_regret(self, capsys):
        assert main(["audit", "--steps", "5"]) == 0
        out = capsys.readouterr().out
        assert "Calibration" in out
        assert "MAPE%" in out
        assert "sim_step_time" in out
        assert "placement regret" in out
        assert "decisions scored" in out

    def test_bias_knob_shows_up_as_bias(self, capsys):
        assert main(["audit", "--steps", "6", "--bias", "1.5"]) == 0
        out = capsys.readouterr().out
        assert "bias=1.5" in out
        row = next(line for line in out.splitlines()
                   if line.startswith("insitu_time"))
        # A 1.5x multiplicative estimator bias is exactly +50% signed error.
        assert "50.0" in row

    def test_export_writes_a_loadable_snapshot(self, capsys, tmp_path):
        path = tmp_path / "run.json"
        assert main(["audit", "--steps", "5", "--export", str(path)]) == 0
        snap = load_snapshot(path)
        assert snap["schema"] == SNAPSHOT_SCHEMA
        assert snap["calibration"]
        assert snap["placements"]

    def test_prometheus_export(self, capsys, tmp_path):
        path = tmp_path / "metrics.prom"
        assert main(["audit", "--steps", "5", "--prometheus", str(path)]) == 0
        text = path.read_text()
        assert "repro_ledger_predictions_total" in text
        assert "repro_placement_regret_seconds_total" in text

    def test_diff_of_two_exports_reports_drift(self, capsys, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        assert main(["audit", "--steps", "6", "--export", str(a)]) == 0
        assert main(["audit", "--steps", "6", "--bias", "1.5",
                     "--export", str(b)]) == 0
        capsys.readouterr()
        assert main(["audit", "--diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "drift:" in out
        assert "insitu_time" in out
        assert "regret:" in out

    def test_diff_of_identical_runs_is_quiet_about_placements(
        self, capsys, tmp_path
    ):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        assert main(["audit", "--steps", "5", "--export", str(a)]) == 0
        assert main(["audit", "--steps", "5", "--export", str(b)]) == 0
        assert json.loads(a.read_text())["placements"] == \
            json.loads(b.read_text())["placements"]
        capsys.readouterr()
        assert main(["audit", "--diff", str(a), str(b)]) == 0
        assert "identical on shared steps" in capsys.readouterr().out

    def test_audit_listed(self, capsys):
        assert "audit" in SUBCOMMANDS
        assert main(["list"]) == 0
        assert "audit" in capsys.readouterr().out
