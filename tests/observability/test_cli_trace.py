"""Smoke tests for the ``repro trace`` CLI subcommand."""

from repro.__main__ import SUBCOMMANDS, main
from repro.observability import read_jsonl
from repro.observability.events import ADAPT_DECISION


class TestTraceCommand:
    def test_runs_and_renders_both_views(self, capsys):
        assert main(["trace", "--steps", "5"]) == 0
        out = capsys.readouterr().out
        assert "Decision timeline" in out
        assert "Occupancy" in out
        assert "Metrics" in out
        assert "sim      |" in out
        assert "staging  |" in out

    def test_jsonl_contains_every_decision_with_inputs(self, capsys, tmp_path):
        path = tmp_path / "trace.jsonl"
        assert main(["trace", "--steps", "5", "--jsonl", str(path)]) == 0
        events = read_jsonl(path)
        decisions = [e for e in events if e.kind == ADAPT_DECISION]
        # monitor_interval defaults to 1: one decision per step.
        assert len(decisions) == 5
        for event in decisions:
            assert "est_intransit_remaining" in event.fields
            assert "est_insitu_time" in event.fields

    def test_mode_option(self, capsys):
        assert main(["trace", "--steps", "4",
                     "--mode", "adaptive_middleware"]) == 0
        assert "mode=adaptive_middleware" in capsys.readouterr().out

    def test_trace_listed(self, capsys):
        assert "trace" in SUBCOMMANDS
        assert main(["list"]) == 0
        assert "trace" in capsys.readouterr().out
