"""Truncation behaviour of the trace renderers.

A wrapped ring buffer must announce itself in both views; an unwrapped
one must not.
"""

from repro.observability import Tracer, decision_timeline, occupancy_gantt
from repro.observability.events import ADAPT_DECISION, STEP_END, STEP_START

BANNER = "!! trace truncated"


def _small_traced_run(capacity):
    tracer = Tracer(capacity=capacity)
    now = [0.0]
    tracer.bind_clock(lambda: now[0])
    for step in range(6):
        tracer.emit(STEP_START, step=step)
        tracer.emit(ADAPT_DECISION, step=step, factor=1, placement="in_situ",
                    staging_cores=None, est_intransit_remaining=0.0,
                    est_insitu_time=1.0, est_intransit_time=2.0)
        now[0] += 1.0
        tracer.emit(STEP_END, step=step)
    return tracer


class TestTruncationBanner:
    def test_unwrapped_trace_has_no_banner(self):
        tracer = _small_traced_run(capacity=1000)
        assert tracer.dropped == 0
        assert BANNER not in decision_timeline(tracer)
        assert BANNER not in occupancy_gantt(tracer)

    def test_wrapped_trace_banners_both_views(self):
        tracer = _small_traced_run(capacity=8)
        assert tracer.dropped == 18 - 8
        for render in (decision_timeline, occupancy_gantt):
            text = render(tracer)
            first = text.splitlines()[0]
            assert first.startswith(BANNER)
            assert "capacity 8" in first
            assert "evicted 10" in first
            assert "newest 8" in first

    def test_empty_trace_paths(self):
        tracer = Tracer()
        assert decision_timeline(tracer) == "(no adaptation decisions in trace)"
        assert occupancy_gantt(tracer) == "(empty trace)"

    def test_wrapped_but_decisionless_trace_still_banners(self):
        tracer = Tracer(capacity=2)
        for step in range(5):
            tracer.emit(STEP_START, step=step)
        timeline = decision_timeline(tracer)
        assert timeline.splitlines()[0].startswith(BANNER)
        assert "(no adaptation decisions in trace)" in timeline

    def test_renderers_still_show_surviving_events(self):
        tracer = _small_traced_run(capacity=8)
        timeline = decision_timeline(tracer)
        # Capacity 8 keeps the newest 8 of 18 events: steps 3-5 survive
        # with their decisions intact.
        assert " 5" in timeline
        gantt = occupancy_gantt(tracer)
        assert "sim      |" in gantt
