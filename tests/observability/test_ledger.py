"""Unit tests for the prediction ledger."""

import pytest

from repro.errors import ObservabilityError
from repro.observability import (
    QUANTITIES,
    PlacementOutcome,
    PredictionLedger,
    PredictionRecord,
)


class TestPredictResolve:
    def test_pairs_realization_with_oldest_pending(self):
        ledger = PredictionLedger()
        first = ledger.predict("insitu_time", 3, 1.0)
        second = ledger.predict("insitu_time", 3, 2.0)
        resolved = ledger.resolve("insitu_time", 3, 1.5)
        assert resolved is first
        assert first.realized == 1.5
        assert not second.resolved

    def test_unknown_quantity_is_an_error(self):
        with pytest.raises(ObservabilityError, match="unknown prediction"):
            PredictionLedger().predict("warp_factor", 0, 9.0)

    def test_unmatched_realization_is_counted_not_raised(self):
        ledger = PredictionLedger()
        assert ledger.resolve("insitu_time", 7, 1.0) is None
        assert ledger.unmatched == 1
        assert len(ledger) == 0

    def test_has_pending_tracks_the_queue(self):
        ledger = PredictionLedger()
        assert not ledger.has_pending("memory_demand", 2)
        ledger.predict("memory_demand", 2, 1e9)
        assert ledger.has_pending("memory_demand", 2)
        ledger.resolve("memory_demand", 2, 1e9)
        assert not ledger.has_pending("memory_demand", 2)

    def test_clock_stamps_predictions_and_realizations(self):
        now = [5.0]
        ledger = PredictionLedger(clock=lambda: now[0])
        record = ledger.predict("sim_step_time", 0, 10.0)
        now[0] = 8.0
        ledger.resolve("sim_step_time", 0, 11.0)
        assert record.predicted_at == 5.0
        assert record.realized_at == 8.0

    def test_error_properties(self):
        record = PredictionRecord(seq=0, quantity="insitu_time", step=0,
                                  predicted=12.0, predicted_at=0.0)
        assert record.error is None
        record.realized = 10.0
        assert record.error == pytest.approx(2.0)
        assert record.signed_relative_error == pytest.approx(0.2)
        assert record.absolute_percentage_error == pytest.approx(20.0)

    def test_zero_realization_yields_no_relative_error(self):
        record = PredictionRecord(seq=0, quantity="insitu_time", step=0,
                                  predicted=1.0, predicted_at=0.0,
                                  realized=0.0)
        assert record.error == 1.0
        assert record.signed_relative_error is None
        assert record.absolute_percentage_error is None

    def test_filters_and_counts(self):
        ledger = PredictionLedger()
        ledger.predict("insitu_time", 0, 1.0)
        ledger.predict("transfer_time", 0, 2.0)
        ledger.predict("insitu_time", 1, 3.0)
        ledger.resolve("insitu_time", 0, 1.0)
        assert len(ledger.records("insitu_time")) == 2
        assert len(ledger.records(step=0)) == 2
        assert len(ledger.resolved_records()) == 1
        assert ledger.pending_count() == 2
        assert ledger.quantities_seen() == {"insitu_time", "transfer_time"}


class TestPlacementScoring:
    def test_insitu_regret_when_staging_was_free(self):
        ledger = PredictionLedger()
        ledger.record_placement(
            0, "in_situ", est_insitu=1.0, est_intransit=5.0,
            insitu_true=1.0, backlog_true=0.0, service_true=2.0,
            dispatched_at=10.0,
        )
        ledger.resolve_placement(0, realized_insitu=1.0)
        # The run continued long past this step: the staged job would
        # have hidden entirely inside the remaining simulation window.
        ledger.finalize(sim_end=100.0)
        (outcome,) = ledger.placements
        assert outcome.scored
        assert outcome.chosen_cost == pytest.approx(1.0)
        assert outcome.alt_cost == pytest.approx(0.0)
        assert outcome.flipped
        assert outcome.regret == pytest.approx(1.0)

    def test_insitu_is_right_when_backlog_outlives_the_run(self):
        ledger = PredictionLedger()
        ledger.record_placement(
            0, "in_situ", est_insitu=1.0, est_intransit=9.0,
            insitu_true=1.0, backlog_true=8.0, service_true=2.0,
            dispatched_at=10.0,
        )
        ledger.resolve_placement(0, realized_insitu=1.0)
        # sim ends at 12: shipping would have left 8 + 2 - (12-10-1) = 9s
        # of backlog against a 1s window -> in-situ at 1s was correct.
        ledger.finalize(sim_end=12.0)
        (outcome,) = ledger.placements
        assert outcome.chosen_cost == pytest.approx(1.0)
        assert outcome.alt_cost == pytest.approx(9.0)
        assert not outcome.flipped
        assert outcome.regret == 0.0

    def test_intransit_costs_stall_plus_unhidden_tail(self):
        ledger = PredictionLedger()
        ledger.record_placement(
            2, "in_transit", est_insitu=4.0, est_intransit=3.0,
            insitu_true=4.0, backlog_true=0.0, service_true=3.0,
            dispatched_at=20.0,
        )
        ledger.resolve_placement(2, block_seconds=1.5, finished_at=34.0)
        ledger.finalize(sim_end=30.0)
        (outcome,) = ledger.placements
        assert outcome.chosen_cost == pytest.approx(1.5 + 4.0)
        assert outcome.alt_cost == pytest.approx(4.0)
        assert outcome.flipped
        assert outcome.regret == pytest.approx(1.5)

    def test_fully_hidden_intransit_has_zero_cost(self):
        ledger = PredictionLedger()
        ledger.record_placement(
            2, "in_transit", est_insitu=4.0, est_intransit=3.0,
            insitu_true=4.0, backlog_true=0.0, service_true=3.0,
            dispatched_at=20.0,
        )
        ledger.resolve_placement(2, block_seconds=0.0, finished_at=25.0)
        ledger.finalize(sim_end=30.0)
        (outcome,) = ledger.placements
        assert outcome.chosen_cost == 0.0
        assert outcome.regret == 0.0

    def test_unresolved_placement_stays_unscored(self):
        ledger = PredictionLedger()
        ledger.record_placement(
            0, "in_situ", est_insitu=1.0, est_intransit=2.0,
            insitu_true=1.0, backlog_true=0.0, service_true=1.0,
            dispatched_at=0.0,
        )
        ledger.finalize(sim_end=10.0)
        (outcome,) = ledger.placements
        assert not outcome.scored
        assert outcome.regret == 0.0

    def test_resolving_unrecorded_step_is_a_noop(self):
        ledger = PredictionLedger()
        ledger.resolve_placement(5, block_seconds=1.0, finished_at=2.0)
        assert ledger.placements == []


class TestRoundTrip:
    def test_as_dict_from_dict_preserves_everything(self):
        ledger = PredictionLedger(clock=lambda: 1.0)
        ledger.predict("insitu_time", 0, 2.0, mechanism="monitor")
        ledger.resolve("insitu_time", 0, 2.5)
        ledger.predict("transfer_time", 1, 3.0)
        ledger.resolve("memory_demand", 9, 1.0)  # unmatched
        ledger.record_placement(
            0, "in_situ", est_insitu=2.0, est_intransit=4.0,
            insitu_true=2.5, backlog_true=0.0, service_true=1.0,
            dispatched_at=1.0,
        )
        ledger.resolve_placement(0, realized_insitu=2.5)
        ledger.finalize(sim_end=10.0)

        clone = PredictionLedger.from_dict(ledger.as_dict())
        assert clone.as_dict() == ledger.as_dict()
        assert clone.unmatched == 1
        assert clone.pending_count() == 1
        # Pending queues are rebuilt: the clone can keep resolving.
        assert clone.resolve("transfer_time", 1, 3.0) is not None

    def test_quantities_registry_is_nonempty_and_closed(self):
        assert QUANTITIES
        assert all(isinstance(v, str) and v for v in QUANTITIES.values())

    def test_placement_outcome_roundtrip(self):
        outcome = PlacementOutcome(
            step=3, chosen="in_transit", est_insitu=1.0, est_intransit=2.0,
            insitu_true=1.1, backlog_true=0.5, service_true=1.5,
            dispatched_at=7.0, block_seconds=0.25, finished_at=12.0,
            scored=True, chosen_cost=2.0, alt_cost=1.1,
        )
        assert PlacementOutcome.from_dict(outcome.as_dict()) == outcome
