"""Smoke tests for the ``repro profile`` CLI subcommand."""

import json

from repro.__main__ import SUBCOMMANDS, main


class TestProfileCommand:
    def test_renders_tree_hot_list_and_coverage(self, capsys):
        assert main(["profile", "--steps", "5"]) == 0
        out = capsys.readouterr().out
        assert "Span tree" in out
        assert "Hot spans" in out
        assert "attributed to spans" in out
        # The instrumented stack shows up as an indented tree.
        assert "workflow.run" in out
        assert "sim.run" in out
        assert "engine.adapt" in out

    def test_attributes_at_least_90_percent_of_wall_time(self, capsys):
        assert main(["profile"]) == 0  # the canonical 20-step quickstart
        out = capsys.readouterr().out
        line = next(l for l in out.splitlines() if "attributed" in l)
        coverage = float(line.rsplit("(", 1)[1].rstrip("%)"))
        assert coverage >= 90.0

    def test_json_dump_is_a_span_mapping(self, capsys, tmp_path):
        path = tmp_path / "spans.json"
        assert main(["profile", "--steps", "5", "--json", str(path)]) == 0
        dump = json.loads(path.read_text())
        assert "workflow.run/sim.run" in dump
        for snap in dump.values():
            assert set(snap) == {"count", "cum_seconds", "self_seconds"}

    def test_budget_check_passes_on_shipped_manifest(self, capsys):
        assert main(["profile", "--budgets", "benchmarks/budgets.json"]) == 0
        out = capsys.readouterr().out
        assert "Budget check" in out
        assert "span budgets satisfied" in out

    def test_budget_violation_exits_nonzero(self, capsys, tmp_path):
        manifest = tmp_path / "tight.json"
        manifest.write_text(json.dumps({
            "schema": "repro.budgets/1",
            "workload": {"mode": "global", "steps": 5, "seed": 42},
            "budgets": {"workflow.run": 1e-9},
        }))
        assert main(["profile", "--steps", "5",
                     "--budgets", str(manifest)]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out

    def test_invalid_budget_manifest_is_a_usage_error(self, capsys, tmp_path):
        manifest = tmp_path / "bad.json"
        manifest.write_text("{nope")
        assert main(["profile", "--steps", "5",
                     "--budgets", str(manifest)]) == 2
        assert "invalid budget manifest" in capsys.readouterr().err

    def test_profile_listed(self, capsys):
        assert "profile" in SUBCOMMANDS
        assert main(["list"]) == 0
        assert "profile" in capsys.readouterr().out
