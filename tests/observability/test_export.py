"""Unit tests for the Prometheus and JSON snapshot exporters."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.observability import (
    BENCH_SCHEMA,
    SNAPSHOT_SCHEMA,
    MetricsRegistry,
    PredictionLedger,
    Profiler,
    diff_bench,
    diff_snapshots,
    export_snapshot,
    load_bench,
    load_snapshot,
    prometheus_text,
    render_bench_diff,
    render_diff,
)


def _registry():
    metrics = MetricsRegistry()
    metrics.counter("workflow.steps").inc(10)
    metrics.gauge("staging.active_cores").set(32)
    timer = metrics.timer("staging.service_seconds")
    timer.observe(2.0)
    timer.observe(4.0)
    return metrics


def _ledger():
    ledger = PredictionLedger()
    ledger.predict("insitu_time", 0, 1.2)
    ledger.resolve("insitu_time", 0, 1.0)
    ledger.predict("insitu_time", 1, 1.0)  # pending
    ledger.record_placement(
        0, "in_situ", est_insitu=1.2, est_intransit=3.0,
        insitu_true=1.0, backlog_true=0.0, service_true=2.0,
        dispatched_at=0.0,
    )
    ledger.resolve_placement(0, realized_insitu=1.0)
    ledger.finalize(sim_end=50.0)
    return ledger


class TestPrometheus:
    def test_counter_gauge_and_timer_conventions(self):
        text = prometheus_text(metrics=_registry())
        assert "# TYPE repro_workflow_steps_total counter" in text
        assert "repro_workflow_steps_total 10" in text
        assert "# TYPE repro_staging_active_cores gauge" in text
        assert "repro_staging_active_cores 32" in text
        # EmaTimer: gauge + _count/_sum counters.
        assert "# TYPE repro_staging_service_seconds gauge" in text
        assert "repro_staging_service_seconds_count 2" in text
        assert "repro_staging_service_seconds_sum 6" in text

    def test_ledger_series_carry_quantity_labels(self):
        text = prometheus_text(ledger=_ledger())
        assert 'repro_ledger_predictions_total{quantity="insitu_time"} 2' in text
        assert 'repro_ledger_resolved_total{quantity="insitu_time"} 1' in text
        assert 'repro_calibration_mape_pct{quantity="insitu_time"}' in text
        assert "repro_placement_decisions_scored_total 1" in text
        assert "repro_placement_decision_flips_total 1" in text
        assert "repro_ledger_unmatched_total 0" in text

    def test_help_and_type_emitted_once_per_metric(self):
        text = prometheus_text(metrics=_registry(), ledger=_ledger())
        for line in (l for l in text.splitlines() if l.startswith("# TYPE")):
            assert text.count(line) == 1

    def test_empty_inputs_render_empty(self):
        assert prometheus_text() == ""


class TestSnapshot:
    def test_payload_shape_and_write(self, tmp_path):
        path = tmp_path / "run.json"
        payload = export_snapshot(metrics=_registry(), ledger=_ledger(),
                                  label="baseline", path=path)
        assert payload["schema"] == SNAPSHOT_SCHEMA
        assert payload["label"] == "baseline"
        assert payload["metrics"]["workflow.steps"]["value"] == 10
        assert payload["metrics"]["staging.service_seconds"]["count"] == 2
        assert payload["calibration"]["insitu_time"]["count"] == 1
        assert payload["regret"]["scored"] == 1
        assert payload["placements"] == {"0": "in_situ"}
        assert json.loads(path.read_text()) == payload

    def test_load_accepts_dict_text_and_path(self, tmp_path):
        payload = export_snapshot(ledger=_ledger())
        assert load_snapshot(payload) == payload
        assert load_snapshot(json.dumps(payload)) == payload
        path = tmp_path / "snap.json"
        path.write_text(json.dumps(payload))
        assert load_snapshot(path) == payload

    def test_load_rejects_wrong_schema(self):
        with pytest.raises(ObservabilityError, match="schema"):
            load_snapshot({"schema": "something/else"})
        with pytest.raises(ObservabilityError, match="not a snapshot"):
            load_snapshot("{not json")

    def test_ledger_roundtrips_through_the_snapshot(self):
        ledger = _ledger()
        payload = export_snapshot(ledger=ledger)
        clone = PredictionLedger.from_dict(payload["ledger"])
        assert clone.as_dict() == ledger.as_dict()


class TestDiff:
    def test_reports_drift_and_decision_changes(self):
        good = PredictionLedger()
        bad = PredictionLedger()
        for step in range(3):
            good.predict("insitu_time", step, 1.0)
            good.resolve("insitu_time", step, 1.0)
            bad.predict("insitu_time", step, 1.5)
            bad.resolve("insitu_time", step, 1.0)
        for ledger, chosen, block in ((good, "in_situ", 0.0),
                                      (bad, "in_transit", 4.0)):
            ledger.record_placement(
                0, chosen, est_insitu=1.0, est_intransit=2.0,
                insitu_true=1.0, backlog_true=0.0, service_true=2.0,
                dispatched_at=0.0,
            )
            if chosen == "in_situ":
                ledger.resolve_placement(0, realized_insitu=1.0)
            else:
                ledger.resolve_placement(0, block_seconds=block,
                                         finished_at=30.0)
            ledger.finalize(sim_end=20.0)

        a = export_snapshot(ledger=good, label="good")
        b = export_snapshot(ledger=bad, label="bad")
        diff = diff_snapshots(a, b)
        assert diff["labels"] == ("good", "bad")
        assert diff["calibration"]["insitu_time"]["mape_delta"] == pytest.approx(50.0)
        assert diff["regret_delta"] > 0
        assert diff["placement_changes"] == [
            {"step": 0, "a": "in_situ", "b": "in_transit"}
        ]

        text = render_diff(diff)
        assert "good -> bad" in text
        assert "insitu_time" in text
        assert "step 0: in_situ -> in_transit" in text

    def test_disjoint_quantities_render_dashes(self):
        a = export_snapshot(ledger=_ledger(), label="a")
        b = export_snapshot(label="b")
        diff = diff_snapshots(a, b)
        assert diff["calibration"]["insitu_time"]["mape_b"] is None
        assert "-" in render_diff(diff)


def _profiler():
    profiler = Profiler()
    with profiler.span("workflow.run"):
        with profiler.span("sim.run"):
            pass
    return profiler


class TestProfileExport:
    def test_prometheus_emits_span_series(self):
        text = prometheus_text(profiler=_profiler())
        assert "# TYPE repro_span_calls_total counter" in text
        assert 'repro_span_calls_total{span="workflow.run"} 1' in text
        assert 'repro_span_seconds_total{span="workflow.run/sim.run"}' in text
        assert 'repro_span_self_seconds_total{span="workflow.run"}' in text

    def test_snapshot_carries_the_span_dump(self):
        profiler = _profiler()
        payload = export_snapshot(profiler=profiler)
        assert payload["schema"] == SNAPSHOT_SCHEMA
        assert payload["profile"] == profiler.dump()
        assert load_snapshot(payload) == payload

    def test_snapshot_without_profiler_has_empty_profile(self):
        assert export_snapshot()["profile"] == {}

    def test_version_1_snapshots_still_load(self):
        legacy = {"schema": "repro.observability.snapshot/1", "label": "old",
                  "metrics": {}, "calibration": {}, "regret": {},
                  "placements": {}, "ledger": {}}
        loaded = load_snapshot(legacy)
        assert loaded["label"] == "old"
        assert "profile" not in loaded


def _bench_snapshot(schema=BENCH_SCHEMA, figures=None, spans=None, rev="r"):
    payload = {"schema": schema, "git_rev": rev,
               "figures": figures if figures is not None else {"fig1": 1.0}}
    if spans is not None:
        payload["profile"] = {
            "workload": {"mode": "global", "steps": 20, "seed": 42},
            "spans": spans,
        }
    return payload


class TestBenchDiffSpans:
    SPANS_A = {"workflow.run": {"count": 1, "cum_seconds": 2.0,
                                "self_seconds": 0.5}}
    SPANS_B = {"workflow.run": {"count": 1, "cum_seconds": 1.0,
                                "self_seconds": 0.25},
               "workflow.run/sim.run": {"count": 1, "cum_seconds": 0.5,
                                        "self_seconds": 0.5}}

    def test_span_drift_between_two_v2_snapshots(self):
        diff = diff_bench(
            _bench_snapshot(spans=self.SPANS_A, rev="old"),
            _bench_snapshot(spans=self.SPANS_B, rev="new"),
        )
        run = diff["spans"]["workflow.run"]
        assert run["delta"] == pytest.approx(-1.0)
        assert run["speedup"] == pytest.approx(2.0)
        # A span present on only one side renders as a dash, not a crash.
        sim = diff["spans"]["workflow.run/sim.run"]
        assert sim["cum_a"] is None and sim["delta"] is None
        text = render_bench_diff(diff)
        assert "profile span drift" in text
        assert "workflow.run" in text

    def test_version_1_snapshot_on_either_side_yields_no_span_section(self):
        old = _bench_snapshot(schema="repro.bench/1")
        new = _bench_snapshot(spans=self.SPANS_B)
        assert load_bench(old)["schema"] == "repro.bench/1"
        diff = diff_bench(old, new)
        assert diff["spans"] == {}
        assert "profile span drift" not in render_bench_diff(diff)

    def test_unknown_bench_schema_rejected(self):
        with pytest.raises(ObservabilityError, match="schema"):
            load_bench(_bench_snapshot(schema="repro.bench/99"))
