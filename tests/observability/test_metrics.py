"""Tests for the metrics registry: counter/gauge/EMA-timer semantics."""

import pytest

from repro.errors import ObservabilityError
from repro.observability import METRIC_NAMES, MetricsRegistry


class TestCounter:
    def test_increments_accumulate(self):
        registry = MetricsRegistry()
        counter = registry.counter("x")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_same_name_returns_same_instrument(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.counter("x").inc()
        assert registry.counter("x").value == 2.0

    def test_negative_increment_rejected(self):
        with pytest.raises(ObservabilityError):
            MetricsRegistry().counter("x").inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(5)
        gauge.set(2.5)
        assert gauge.value == 2.5


class TestEmaTimer:
    def test_first_observation_seeds_the_average(self):
        timer = MetricsRegistry().timer("t", alpha=0.3)
        timer.observe(10.0)
        assert timer.value == 10.0

    def test_ema_blending(self):
        timer = MetricsRegistry().timer("t", alpha=0.5)
        timer.observe(10.0)
        timer.observe(20.0)
        assert timer.value == pytest.approx(15.0)
        assert timer.count == 2
        assert timer.total == pytest.approx(30.0)

    def test_invalid_alpha_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            registry.timer("t", alpha=0.0)
        with pytest.raises(ObservabilityError):
            registry.timer("u", alpha=1.5)

    def test_negative_duration_rejected(self):
        with pytest.raises(ObservabilityError):
            MetricsRegistry().timer("t").observe(-1.0)


class TestRegistry:
    def test_type_collision_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ObservabilityError):
            registry.gauge("x")
        with pytest.raises(ObservabilityError):
            registry.timer("x")

    def test_as_dict_and_names(self):
        registry = MetricsRegistry()
        registry.counter("b").inc(2)
        registry.gauge("a").set(1)
        assert registry.names() == ["a", "b"]
        assert registry.as_dict() == {"a": 1.0, "b": 2.0}

    def test_render_empty_and_populated(self):
        registry = MetricsRegistry()
        assert "no metrics" in registry.render()
        registry.counter("hits").inc(3)
        registry.timer("lat").observe(0.5)
        text = registry.render()
        assert "hits" in text and "lat" in text and "n=1" in text


class TestNameRegistry:
    def test_builtin_names_are_namespaced_and_described(self):
        for name, description in METRIC_NAMES.items():
            assert "." in name
            assert description
