"""Tests for the metrics registry: counter/gauge/EMA-timer semantics."""

import pytest

from repro.errors import ObservabilityError
from repro.observability import METRIC_NAMES, MetricsRegistry, merge_worker_metrics


class TestCounter:
    def test_increments_accumulate(self):
        registry = MetricsRegistry()
        counter = registry.counter("x")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_same_name_returns_same_instrument(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.counter("x").inc()
        assert registry.counter("x").value == 2.0

    def test_negative_increment_rejected(self):
        with pytest.raises(ObservabilityError):
            MetricsRegistry().counter("x").inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(5)
        gauge.set(2.5)
        assert gauge.value == 2.5


class TestEmaTimer:
    def test_first_observation_seeds_the_average(self):
        timer = MetricsRegistry().timer("t", alpha=0.3)
        timer.observe(10.0)
        assert timer.value == 10.0

    def test_ema_blending(self):
        timer = MetricsRegistry().timer("t", alpha=0.5)
        timer.observe(10.0)
        timer.observe(20.0)
        assert timer.value == pytest.approx(15.0)
        assert timer.count == 2
        assert timer.total == pytest.approx(30.0)

    def test_invalid_alpha_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            registry.timer("t", alpha=0.0)
        with pytest.raises(ObservabilityError):
            registry.timer("u", alpha=1.5)

    def test_negative_duration_rejected(self):
        with pytest.raises(ObservabilityError):
            MetricsRegistry().timer("t").observe(-1.0)


class TestRegistry:
    def test_type_collision_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ObservabilityError):
            registry.gauge("x")
        with pytest.raises(ObservabilityError):
            registry.timer("x")

    def test_as_dict_and_names(self):
        registry = MetricsRegistry()
        registry.counter("b").inc(2)
        registry.gauge("a").set(1)
        assert registry.names() == ["a", "b"]
        assert registry.as_dict() == {"a": 1.0, "b": 2.0}

    def test_render_empty_and_populated(self):
        registry = MetricsRegistry()
        assert "no metrics" in registry.render()
        registry.counter("hits").inc(3)
        registry.timer("lat").observe(0.5)
        text = registry.render()
        assert "hits" in text and "lat" in text and "n=1" in text


class TestMergeWorkerMetrics:
    def test_counters_sum_and_gauges_take_the_last_dump(self):
        parent = MetricsRegistry()
        parent.counter("hits").inc(1)
        merge_worker_metrics(parent, [
            {"hits": {"kind": "counter", "value": 2.0},
             "mem": {"kind": "gauge", "value": 5.0}},
            {"mem": {"kind": "gauge", "value": 3.0}},
        ])
        assert parent.counter("hits").value == 3.0
        assert parent.gauge("mem").value == 3.0

    def test_empty_dumps_are_a_noop(self):
        parent = MetricsRegistry()
        parent.counter("hits").inc(2)
        before = parent.dump()
        merge_worker_metrics(parent, [])
        merge_worker_metrics(parent, [{}, {}])
        assert parent.dump() == before

    def test_timer_merge_is_a_count_weighted_average(self):
        parent = MetricsRegistry()
        merge_worker_metrics(parent, [
            {"lat": {"kind": "timer", "value": 10.0, "count": 1,
                     "total": 10.0, "alpha": 0.3}},
            {"lat": {"kind": "timer", "value": 40.0, "count": 3,
                     "total": 120.0, "alpha": 0.3}},
        ])
        timer = parent.timer("lat")
        assert timer.value == pytest.approx(32.5)  # (1*10 + 3*40) / 4
        assert timer.count == 4
        assert timer.total == pytest.approx(130.0)

    def test_timer_merge_is_order_independent_but_gauges_are_not(self):
        d1 = {"lat": {"kind": "timer", "value": 10.0, "count": 2,
                      "total": 20.0, "alpha": 0.3},
              "mem": {"kind": "gauge", "value": 1.0}}
        d2 = {"lat": {"kind": "timer", "value": 20.0, "count": 2,
                      "total": 40.0, "alpha": 0.3},
              "mem": {"kind": "gauge", "value": 2.0}}
        forward = merge_worker_metrics(MetricsRegistry(), [d1, d2])
        reverse = merge_worker_metrics(MetricsRegistry(), [d2, d1])
        assert forward.timer("lat").value == reverse.timer("lat").value
        assert forward.timer("lat").count == reverse.timer("lat").count
        assert forward.gauge("mem").value == 2.0
        assert reverse.gauge("mem").value == 1.0

    def test_idle_worker_timer_does_not_dilute_the_parent(self):
        parent = MetricsRegistry()
        parent.timer("lat").observe(10.0)
        merge_worker_metrics(parent, [
            {"lat": {"kind": "timer", "value": 0.0, "count": 0,
                     "total": 0.0, "alpha": 0.3}},
        ])
        assert parent.timer("lat").value == 10.0
        assert parent.timer("lat").count == 1

    def test_conflicting_instrument_kind_is_an_error(self):
        parent = MetricsRegistry()
        parent.counter("x").inc()
        with pytest.raises(ObservabilityError):
            merge_worker_metrics(
                parent, [{"x": {"kind": "gauge", "value": 1.0}}]
            )

    def test_unknown_kind_is_an_error(self):
        with pytest.raises(ObservabilityError, match="unknown kind"):
            merge_worker_metrics(
                MetricsRegistry(), [{"x": {"kind": "histogram", "value": 1.0}}]
            )


class TestMergeDuplicateAndConflictingDumps:
    """Pin the merge semantics for re-delivered and disagreeing dumps.

    Worker dumps are *deltas*, not snapshots: folding the same dump in
    twice double-counts counters and timer tallies (the caller owns
    at-most-once delivery), while gauges -- last-write-wins -- are
    idempotent under re-delivery.  Two dumps that disagree on a metric's
    kind fail loudly on the second dump, after the first has already
    been applied.
    """

    def test_duplicate_dump_double_counts_counters_and_timers(self):
        worker = MetricsRegistry()
        worker.counter("hits").inc(3)
        worker.timer("lat").observe(2.0)
        dump = worker.dump()
        parent = MetricsRegistry()
        merge_worker_metrics(parent, [dump, dump])
        assert parent.counter("hits").value == 6.0
        assert parent.timer("lat").count == 2
        assert parent.timer("lat").total == pytest.approx(4.0)
        # The count-weighted EMA average of two identical dumps is the
        # dump's own value -- duplication skews tallies, not the average.
        assert parent.timer("lat").value == pytest.approx(2.0)

    def test_duplicate_dump_is_idempotent_for_gauges(self):
        worker = MetricsRegistry()
        worker.gauge("mem").set(7.0)
        dump = worker.dump()
        parent = MetricsRegistry()
        merge_worker_metrics(parent, [dump])
        once = parent.gauge("mem").value
        merge_worker_metrics(parent, [dump])
        assert parent.gauge("mem").value == once == 7.0

    def test_dumps_disagreeing_on_kind_fail_after_first_applies(self):
        parent = MetricsRegistry()
        with pytest.raises(ObservabilityError, match="Counter"):
            merge_worker_metrics(parent, [
                {"x": {"kind": "counter", "value": 1.0}},
                {"x": {"kind": "gauge", "value": 2.0}},
            ])
        # The first dump landed before the conflict was detected.
        assert parent.counter("x").value == 1.0

    def test_timer_vs_counter_disagreement_is_an_error(self):
        parent = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            merge_worker_metrics(parent, [
                {"lat": {"kind": "timer", "value": 1.0, "count": 1,
                         "total": 1.0, "alpha": 0.3}},
                {"lat": {"kind": "counter", "value": 1.0}},
            ])


class TestNameRegistry:
    def test_builtin_names_are_namespaced_and_described(self):
        for name, description in METRIC_NAMES.items():
            assert "." in name
            assert description
