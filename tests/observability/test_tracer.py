"""Tests for the Tracer: ordering, ring buffer, JSONL round trip."""

import pytest

from repro.errors import ObservabilityError
from repro.hpc.event import Simulator
from repro.observability import EVENT_KINDS, TraceEvent, Tracer, read_jsonl


class TestOrderingUnderSimulator:
    def test_timestamps_follow_the_simulated_clock(self):
        sim = Simulator()
        tracer = Tracer(clock=lambda: sim.now)

        def proc():
            tracer.emit("step.start", step=1)
            yield sim.timeout(2.5)
            tracer.emit("step.end", step=1)
            yield sim.timeout(1.5)
            tracer.emit("step.start", step=2)

        sim.run(sim.process(proc()))
        times = [e.ts for e in tracer.events()]
        assert times == [0.0, 2.5, 4.0]

    def test_seq_totally_orders_simultaneous_events(self):
        sim = Simulator()
        tracer = Tracer(clock=lambda: sim.now)

        def a():
            yield sim.timeout(1.0)
            tracer.emit("first")

        def b():
            yield sim.timeout(1.0)
            tracer.emit("second")

        pa, pb = sim.process(a()), sim.process(b())
        sim.run(sim.all_of([pa, pb]))
        events = tracer.events()
        assert [e.ts for e in events] == [1.0, 1.0]
        # The kernel breaks time ties by insertion order; seq preserves it.
        assert [e.kind for e in events] == ["first", "second"]
        assert events[0].seq < events[1].seq

    def test_unclocked_tracer_still_orders_by_seq(self):
        tracer = Tracer()
        tracer.emit("a")
        tracer.emit("b")
        assert [e.seq for e in tracer.events()] == [0, 1]
        assert all(e.ts == 0.0 for e in tracer.events())


class TestRingBuffer:
    def test_capacity_evicts_oldest_and_counts_drops(self):
        tracer = Tracer(capacity=3)
        for i in range(5):
            tracer.emit("tick", i=i)
        assert len(tracer) == 3
        assert tracer.dropped == 2
        assert [e.fields["i"] for e in tracer.events()] == [2, 3, 4]

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ObservabilityError):
            Tracer(capacity=0)

    def test_clear_resets_buffer_but_not_seq(self):
        tracer = Tracer()
        tracer.emit("a")
        tracer.clear()
        event = tracer.emit("b")
        assert len(tracer) == 1
        assert event.seq == 1


class TestFiltering:
    def test_filter_by_kind_and_step(self):
        tracer = Tracer()
        tracer.emit("step.start", step=1)
        tracer.emit("step.end", step=1)
        tracer.emit("step.start", step=2)
        assert len(tracer.events(kind="step.start")) == 2
        assert len(tracer.events(step=1)) == 2
        assert len(tracer.events(kind="step.end", step=2)) == 0
        assert tracer.kinds_seen() == {"step.start", "step.end"}


class TestDisabled:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        assert tracer.emit("step.start", step=1, data=123) is None
        assert len(tracer) == 0
        assert tracer.to_jsonl() == ""

    def test_reenabling_resumes_recording(self):
        tracer = Tracer(enabled=False)
        tracer.emit("a")
        tracer.enabled = True
        tracer.emit("b")
        assert [e.kind for e in tracer.events()] == ["b"]


class TestJsonl:
    def test_roundtrip_text(self):
        tracer = Tracer()
        tracer.emit("adapt.decision", step=3, factor=2, placement="in_situ")
        tracer.emit("sim.stall", step=4, seconds=1.25, cause="staging_memory")
        restored = read_jsonl(tracer.to_jsonl())
        assert restored == tracer.events()

    def test_roundtrip_file(self, tmp_path):
        tracer = Tracer()
        tracer.emit("run.start", mode="global")
        path = tmp_path / "trace.jsonl"
        tracer.to_jsonl(path)
        restored = read_jsonl(path)
        assert len(restored) == 1
        assert restored[0] == TraceEvent(
            seq=0, ts=0.0, kind="run.start", step=None,
            fields={"mode": "global"},
        )

    def test_garbage_rejected(self):
        with pytest.raises(ObservabilityError):
            read_jsonl("not json\n")
        with pytest.raises(ObservabilityError):
            read_jsonl('{"ts": 0.0}\n')  # missing required keys


class TestEventRegistry:
    def test_kinds_are_unique_and_described(self):
        assert len(EVENT_KINDS) == len(set(EVENT_KINDS))
        for kind, description in EVENT_KINDS.items():
            assert "." in kind
            assert description
