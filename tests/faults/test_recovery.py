"""Recovery-policy tests: faulted runs complete, degrade, and stay honest.

The contracts under test, in order of strength:

- ``faults=None`` and an *empty* plan are bit-identical to each other;
- a run whose policy never touches staging (static in-situ) is immune to
  staging faults — its results match the fault-free run exactly;
- a blackout degrades placement to in-situ and the run completes with
  the injection and the recovery decision both visible in the trace;
- retry exhaustion raises :class:`StagingError` — never a silent skip;
- same plan + same seed ⇒ identical results (determinism).
"""

import pytest

from repro.core.actions import Placement
from repro.errors import StagingError
from repro.faults import CoreLoss, CoreRestore, FaultInjector, FaultPlan, ObjectDrop
from repro.hpc.event import Simulator
from repro.hpc.network import Network
from repro.hpc.systems import titan
from repro.observability import Tracer
from repro.observability.events import (
    ADAPT_DECISION,
    FAULT_INJECTED,
    PLACEMENT_FALLBACK,
    STAGING_RETRY,
)
from repro.staging.area import StagingArea
from repro.staging.messaging import RetryPolicy
from repro.workflow.config import Mode, WorkflowConfig
from repro.workflow.driver import run_workflow
from repro.workflow.report import result_to_json
from repro.workload.synthetic import SyntheticAMRConfig, synthetic_amr_trace


def small_trace(steps=12, seed=0):
    return synthetic_amr_trace(SyntheticAMRConfig(
        steps=steps, nranks=64, base_cells=2e7, sim_cost_per_cell=1.0,
        growth=1.5, analysis_growth_exponent=1.0, seed=seed,
    ))


def config(mode=Mode.GLOBAL):
    return WorkflowConfig(mode=mode, sim_cores=1024, staging_cores=64,
                          spec=titan(), analysis_cost_per_cell=0.035)


def blackout_plan(horizon, cores=64):
    return FaultPlan([
        CoreLoss(at=0.35 * horizon, cores=cores),
        CoreRestore(at=0.65 * horizon, cores=cores),
    ])


class TestBitIdentity:
    def test_empty_plan_matches_no_faults_exactly(self):
        baseline = run_workflow(config(), small_trace())
        faulted = run_workflow(config(), small_trace(),
                               faults=FaultPlan.empty())
        assert result_to_json(faulted) == result_to_json(baseline)

    def test_accepts_prewired_injector(self):
        baseline = run_workflow(config(), small_trace())
        injector = FaultInjector(FaultPlan.empty())
        via_injector = run_workflow(config(), small_trace(), faults=injector)
        assert result_to_json(via_injector) == result_to_json(baseline)


class TestBlackoutDegradation:
    @pytest.fixture(scope="class")
    def blackout_run(self):
        baseline = run_workflow(config(), small_trace())
        tracer = Tracer()
        plan = blackout_plan(baseline.end_to_end_seconds)
        result = run_workflow(config(), small_trace(), tracer=tracer,
                              faults=plan)
        return baseline, result, tracer, plan

    def test_run_completes_with_every_analysis_done(self, blackout_run):
        _baseline, result, _tracer, _plan = blackout_run
        assert all(m.analysis_done_at is not None for m in result.steps)
        result.validate()

    def test_injection_and_recovery_visible_in_trace(self, blackout_run):
        _baseline, _result, tracer, _plan = blackout_run
        injected = tracer.events(kind=FAULT_INJECTED)
        kinds = [e.fields["fault"] for e in injected]
        assert "staging.core_loss" in kinds
        assert "staging.core_restore" in kinds
        degraded = [e for e in tracer.events(kind=ADAPT_DECISION)
                    if e.fields.get("degraded")]
        fallbacks = tracer.events(kind=PLACEMENT_FALLBACK)
        assert degraded or fallbacks, (
            "a blackout must leave a visible recovery decision in the trace"
        )

    def test_degraded_decisions_place_in_situ(self, blackout_run):
        _baseline, _result, tracer, _plan = blackout_run
        for event in tracer.events(kind=ADAPT_DECISION):
            if event.fields.get("degraded"):
                assert event.fields["placement"] == Placement.IN_SITU.value

    def test_steps_decided_during_blackout_ran_in_situ(self, blackout_run):
        _baseline, result, tracer, _plan = blackout_run
        by_step = {m.step: m for m in result.steps}
        dark_steps = {e.step for e in tracer.events(kind=ADAPT_DECISION)
                      if e.fields.get("degraded")}
        dark_steps |= {e.step for e in tracer.events(kind=PLACEMENT_FALLBACK)}
        assert dark_steps, "the blackout window must cover at least one step"
        for step in dark_steps:
            assert by_step[step].placement is Placement.IN_SITU

    def test_blackout_costs_time_but_not_correctness(self, blackout_run):
        baseline, result, _tracer, _plan = blackout_run
        assert result.end_to_end_seconds >= baseline.end_to_end_seconds
        # Nothing shipped while staging was dark.
        assert result.data_moved_bytes <= baseline.data_moved_bytes


class TestFaultFreeEquivalence:
    def test_static_insitu_immune_to_staging_faults(self):
        """The policy never touches staging, so staging faults are inert."""
        baseline = run_workflow(config(Mode.STATIC_INSITU), small_trace())
        plan = blackout_plan(baseline.end_to_end_seconds)
        faulted = run_workflow(config(Mode.STATIC_INSITU), small_trace(),
                               faults=plan)
        assert faulted.end_to_end_seconds == baseline.end_to_end_seconds
        assert faulted.data_moved_bytes == baseline.data_moved_bytes
        assert faulted.placement_counts() == baseline.placement_counts()

    def test_recovered_drops_preserve_logical_data_movement(self):
        """Dropped ingests are retried: same analyses, same logical bytes."""
        baseline = run_workflow(config(Mode.STATIC_INTRANSIT), small_trace())
        tracer = Tracer()
        plan = FaultPlan([ObjectDrop(step=1), ObjectDrop(step=3)])
        faulted = run_workflow(config(Mode.STATIC_INTRANSIT), small_trace(),
                               tracer=tracer, faults=plan)
        assert all(m.analysis_done_at is not None for m in faulted.steps)
        assert faulted.placement_counts() == baseline.placement_counts()
        assert faulted.data_moved_bytes == baseline.data_moved_bytes
        assert len(tracer.events(kind=STAGING_RETRY)) == 2


class TestRetryExhaustion:
    def test_exhausted_retries_raise_staging_error(self):
        """More drops than attempts: the run must fail loudly."""
        policy = RetryPolicy(max_attempts=2, base_delay=0.1)
        plan = FaultPlan([ObjectDrop(step=0, count=2)])
        injector = FaultInjector(plan)
        sim = Simulator(faults=injector)
        net = Network(sim)
        net.add_link("sim", "staging", bandwidth=100.0, latency=0.0)
        area = StagingArea(sim, net, core_rate=10.0, total_cores=4,
                           faults=injector, retry_policy=policy)
        injector.attach_network(net)
        injector.arm()
        area.submit(0, nbytes=100.0, work_units=10.0)
        with pytest.raises(StagingError):
            sim.run()

    def test_drops_within_budget_recover(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.1)
        plan = FaultPlan([ObjectDrop(step=0, count=2)])
        injector = FaultInjector(plan)
        sim = Simulator(faults=injector)
        net = Network(sim)
        net.add_link("sim", "staging", bandwidth=100.0, latency=0.0)
        area = StagingArea(sim, net, core_rate=10.0, total_cores=4,
                           faults=injector, retry_policy=policy)
        injector.attach_network(net)
        injector.arm()
        job = area.submit(0, nbytes=100.0, work_units=10.0)
        sim.run(job.done)
        assert len(area.completed) == 1


class TestDeterminism:
    def test_same_plan_same_results(self):
        baseline = run_workflow(config(), small_trace())
        horizon = baseline.end_to_end_seconds

        def one_run():
            tracer = Tracer()
            result = run_workflow(config(), small_trace(), tracer=tracer,
                                  faults=blackout_plan(horizon))
            return result, tracer

        a, tracer_a = one_run()
        b, tracer_b = one_run()
        assert result_to_json(a) == result_to_json(b)
        assert [e.as_dict() for e in tracer_a.events()] == \
               [e.as_dict() for e in tracer_b.events()]
