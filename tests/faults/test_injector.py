"""FaultInjector unit tests: wiring validation, timed application, queries."""

import pytest

from repro.errors import FaultError
from repro.faults import (
    CoreLoss,
    CoreRestore,
    FaultInjector,
    FaultPlan,
    LinkDegrade,
    ObjectCorrupt,
    ObjectDrop,
    Straggler,
)
from repro.hpc.event import Simulator
from repro.hpc.network import Network
from repro.observability import MetricsRegistry, Tracer
from repro.observability.events import FAULT_CLEARED, FAULT_INJECTED
from repro.staging.area import StagingArea


def wired(plan, tracer=None, metrics=None, total_cores=4):
    """A fully wired injector over a tiny simulator/network/staging trio."""
    injector = FaultInjector(plan, tracer=tracer, metrics=metrics)
    sim = Simulator(faults=injector)
    net = Network(sim)
    net.add_link("sim", "staging", bandwidth=100.0, latency=0.0)
    area = StagingArea(sim, net, core_rate=10.0, total_cores=total_cores,
                       faults=injector)
    injector.attach_network(net)
    if tracer is not None:
        tracer.bind_clock(lambda: sim.now)
    return injector, sim, net, area


class TestWiring:
    def test_needs_a_fault_plan(self):
        with pytest.raises(FaultError, match="FaultPlan"):
            FaultInjector([CoreLoss(at=1.0, cores=2)])

    def test_empty_plan_arms_without_attachments(self):
        injector = FaultInjector(FaultPlan.empty())
        injector.arm()  # nothing to schedule, nothing to validate
        assert injector.injected == 0

    def test_timed_fault_without_simulator_rejected(self):
        injector = FaultInjector(FaultPlan([CoreLoss(at=1.0, cores=2)]))
        with pytest.raises(FaultError, match="simulator"):
            injector.arm()

    def test_staging_fault_without_staging_rejected(self):
        injector = FaultInjector(FaultPlan([CoreLoss(at=1.0, cores=2)]))
        Simulator(faults=injector)
        with pytest.raises(FaultError, match="staging"):
            injector.arm()

    def test_link_fault_without_network_rejected(self):
        injector = FaultInjector(
            FaultPlan([LinkDegrade(at=1.0, duration=1.0, bandwidth_factor=0.5)])
        )
        Simulator(faults=injector)
        with pytest.raises(FaultError, match="[Nn]etwork"):
            injector.arm()

    def test_double_arm_rejected(self):
        injector, _sim, _net, _area = wired(FaultPlan.empty())
        injector.arm()
        with pytest.raises(FaultError, match="already armed"):
            injector.arm()


class TestCoreFaults:
    def test_core_loss_and_restore_fire_at_planned_times(self):
        tracer = Tracer()
        metrics = MetricsRegistry()
        plan = FaultPlan([
            CoreLoss(at=5.0, cores=2),
            CoreRestore(at=9.0, cores=2),
        ])
        injector, sim, _net, area = wired(plan, tracer=tracer, metrics=metrics)
        injector.arm()
        observed = []

        def probe(sim):
            for t in (4.0, 6.0, 10.0):
                yield sim.timeout(t - sim.now)
                observed.append((sim.now, area.healthy_cores))

        sim.process(probe(sim))
        sim.run()
        assert observed == [(4.0, 4), (6.0, 2), (10.0, 4)]
        assert injector.injected == 2
        assert metrics.counter("faults.injected").value == 2.0
        kinds = [e.fields["fault"] for e in tracer.events(kind=FAULT_INJECTED)]
        assert kinds == ["staging.core_loss", "staging.core_restore"]

    def test_total_loss_makes_staging_unreachable(self):
        plan = FaultPlan([CoreLoss(at=1.0, cores=4)])
        injector, sim, _net, area = wired(plan)
        injector.arm()
        sim.run()
        assert area.healthy_cores == 0
        assert not area.reachable


class TestLinkDegrade:
    def test_window_scales_and_restores_exactly(self):
        plan = FaultPlan([
            LinkDegrade(at=2.0, duration=3.0,
                        bandwidth_factor=0.1, latency_factor=10.0),
        ])
        injector, sim, net, _area = wired(plan)
        injector.arm()
        link = net.link_between("sim", "staging")
        base_bandwidth, base_latency = link.bandwidth, link.latency
        observed = []

        def probe(sim):
            for t in (1.0, 3.0, 6.0):
                yield sim.timeout(t - sim.now)
                observed.append((link.bandwidth, link.latency))

        sim.process(probe(sim))
        sim.run()
        assert observed[0] == (base_bandwidth, base_latency)
        assert observed[1] == (pytest.approx(base_bandwidth * 0.1),
                               pytest.approx(base_latency * 10.0))
        # Exact restore: the pristine values verbatim, not a re-multiply.
        assert observed[2] == (base_bandwidth, base_latency)

    def test_overlapping_windows_compose_multiplicatively(self):
        plan = FaultPlan([
            LinkDegrade(at=1.0, duration=4.0, bandwidth_factor=0.5),
            LinkDegrade(at=2.0, duration=1.0, bandwidth_factor=0.5),
        ])
        injector, sim, net, _area = wired(plan)
        injector.arm()
        link = net.link_between("sim", "staging")
        base = link.bandwidth
        observed = []

        def probe(sim):
            for t in (2.5, 4.0, 6.0):
                yield sim.timeout(t - sim.now)
                observed.append(link.bandwidth)

        sim.process(probe(sim))
        sim.run()
        assert observed[0] == pytest.approx(base * 0.25)
        assert observed[1] == pytest.approx(base * 0.5)
        assert observed[2] == base

    def test_cleared_event_emitted_when_window_closes(self):
        tracer = Tracer()
        plan = FaultPlan([LinkDegrade(at=1.0, duration=1.0, bandwidth_factor=0.5)])
        injector, sim, _net, _area = wired(plan, tracer=tracer)
        injector.arm()
        sim.run()
        cleared = tracer.events(kind=FAULT_CLEARED)
        assert len(cleared) == 1
        assert cleared[0].fields["fault"] == "network.degrade"
        assert cleared[0].ts == 2.0


class TestStragglers:
    def test_service_multiplier_sampled_inside_window(self):
        plan = FaultPlan([Straggler(at=10.0, duration=5.0, factor=3.0)])
        injector, _sim, _net, _area = wired(plan)
        injector.arm()
        assert injector.service_multiplier(9.9) == 1.0
        assert injector.service_multiplier(10.0) == 3.0
        assert injector.service_multiplier(14.9) == 3.0
        assert injector.service_multiplier(15.0) == 1.0

    def test_overlapping_windows_multiply(self):
        plan = FaultPlan([
            Straggler(at=0.0, duration=10.0, factor=2.0),
            Straggler(at=5.0, duration=10.0, factor=3.0),
        ])
        injector, _sim, _net, _area = wired(plan)
        injector.arm()
        assert injector.service_multiplier(7.0) == 6.0


class TestStepFaults:
    def test_drops_consumed_per_attempt(self):
        plan = FaultPlan([ObjectDrop(step=3, count=2)])
        injector, _sim, _net, _area = wired(plan)
        injector.arm()
        assert injector.may_drop(3)
        assert not injector.may_drop(2)
        assert injector.consume_drop(3)
        assert injector.consume_drop(3)
        assert not injector.consume_drop(3)
        assert not injector.may_drop(3)
        assert injector.injected == 2

    def test_corrupts_consumed_and_traced(self):
        tracer = Tracer()
        plan = FaultPlan([ObjectCorrupt(step=1)])
        injector, _sim, _net, _area = wired(plan, tracer=tracer)
        injector.arm()
        assert injector.consume_corrupt(1)
        assert not injector.consume_corrupt(1)
        assert not injector.consume_corrupt(0)
        events = tracer.events(kind=FAULT_INJECTED)
        assert len(events) == 1
        assert events[0].fields["fault"] == "staging.object_corrupt"
