"""Smoke tests for the ``repro faults`` CLI subcommand."""

import pytest

from repro.__main__ import SUBCOMMANDS, main
from repro.faults import SCENARIOS
from repro.observability import read_jsonl
from repro.observability.events import FAULT_INJECTED


class TestFaultsCommand:
    def test_list_names_every_scenario(self, capsys):
        assert main(["faults", "--list"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS:
            assert name in out

    def test_scenario_run_reports_plan_deltas_and_timeline(self, capsys):
        assert main(["faults", "blackout", "--steps", "6"]) == 0
        out = capsys.readouterr().out
        assert "Fault plan" in out
        assert "staging.core_loss" in out
        assert "Time to solution" in out
        assert "delta" in out
        assert "Fault/recovery timeline" in out
        assert "inject staging.core_loss" in out
        assert "faults.injected" in out  # the metrics table

    def test_jsonl_holds_the_injections(self, capsys, tmp_path):
        path = tmp_path / "faults.jsonl"
        assert main(["faults", "core-loss", "--steps", "5",
                     "--jsonl", str(path)]) == 0
        events = read_jsonl(path)
        injected = [e for e in events if e.kind == FAULT_INJECTED]
        kinds = {e.fields["fault"] for e in injected}
        assert kinds == {"staging.core_loss", "staging.core_restore"}

    def test_missing_scenario_is_an_argparse_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["faults"])

    def test_unknown_scenario_fails_loudly(self, capsys):
        from repro.errors import FaultError

        with pytest.raises(FaultError):
            main(["faults", "meteor-strike", "--steps", "4"])

    def test_faults_listed_as_subcommand(self, capsys):
        assert "faults" in SUBCOMMANDS
        assert main(["list"]) == 0
        assert "faults" in capsys.readouterr().out
