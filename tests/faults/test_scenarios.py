"""Scenario-builder tests: the named catalog is valid, seeded, deterministic."""

import pytest

from repro.errors import FaultError
from repro.faults import SCENARIOS, CoreLoss, FaultPlan, ObjectDrop, build_scenario
from repro.faults.plan import TIMED_KINDS


class TestCatalog:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_every_scenario_builds_a_valid_plan(self, name):
        plan = build_scenario(name, horizon=100.0, seed=0,
                              staging_cores=64, steps=20)
        assert isinstance(plan, FaultPlan)
        assert len(plan) >= 1

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_timed_faults_land_inside_the_horizon(self, name):
        horizon = 250.0
        plan = build_scenario(name, horizon=horizon, seed=3,
                              staging_cores=64, steps=20)
        for fault in plan.timed():
            assert 0.0 <= fault.at <= horizon

    def test_every_scenario_has_a_description(self):
        for name, (description, builder) in SCENARIOS.items():
            assert description
            assert callable(builder)

    def test_blackout_kills_every_core(self):
        plan = build_scenario("blackout", horizon=100.0, staging_cores=48)
        losses = [f for f in plan if isinstance(f, CoreLoss)]
        assert losses and losses[0].cores == 48

    def test_flaky_ingest_always_drops_something(self):
        for seed in range(5):
            plan = build_scenario("flaky-ingest", horizon=100.0, seed=seed,
                                  staging_cores=64, steps=20)
            assert any(isinstance(f, ObjectDrop) for f in plan)


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_same_seed_same_plan(self, name):
        a = build_scenario(name, horizon=123.0, seed=7, staging_cores=32,
                           steps=15)
        b = build_scenario(name, horizon=123.0, seed=7, staging_cores=32,
                           steps=15)
        assert a.cache_token() == b.cache_token()

    def test_seed_varies_the_random_scenarios(self):
        a = build_scenario("stragglers", horizon=100.0, seed=0)
        b = build_scenario("stragglers", horizon=100.0, seed=1)
        assert a.cache_token() != b.cache_token()


class TestErrors:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(FaultError, match="unknown fault scenario"):
            build_scenario("meteor-strike", horizon=100.0)

    def test_nonpositive_horizon_rejected(self):
        with pytest.raises(FaultError, match="horizon"):
            build_scenario("blackout", horizon=0.0)
