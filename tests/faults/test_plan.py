"""Fault-plan unit tests: validation, ordering, identity, serialization."""

import pytest

from repro.errors import FaultError
from repro.faults import (
    FAULT_KINDS,
    CoreLoss,
    CoreRestore,
    FaultPlan,
    LinkDegrade,
    ObjectCorrupt,
    ObjectDrop,
    Straggler,
)
from repro.faults.plan import STEP_KINDS, TIMED_KINDS


class TestRegistry:
    def test_every_fault_class_is_registered(self):
        kinds = {cls.kind for cls in TIMED_KINDS + STEP_KINDS}
        assert kinds == set(FAULT_KINDS)

    def test_registry_has_descriptions(self):
        for kind, description in FAULT_KINDS.items():
            assert description, f"{kind} has no description"


class TestValidation:
    @pytest.mark.parametrize("fault", [
        CoreLoss(at=-1.0, cores=4),
        CoreLoss(at=1.0, cores=0),
        CoreRestore(at=-0.5, cores=4),
        CoreRestore(at=1.0, cores=-2),
        LinkDegrade(at=-1.0, duration=1.0),
        LinkDegrade(at=1.0, duration=0.0),
        LinkDegrade(at=1.0, duration=1.0, bandwidth_factor=0.0),
        LinkDegrade(at=1.0, duration=1.0, latency_factor=-1.0),
        Straggler(at=-1.0, duration=1.0, factor=2.0),
        Straggler(at=1.0, duration=-1.0, factor=2.0),
        Straggler(at=1.0, duration=1.0, factor=0.5),
        ObjectDrop(step=-1),
        ObjectDrop(step=0, count=0),
        ObjectCorrupt(step=-3),
        ObjectCorrupt(step=0, repeats=0),
    ])
    def test_invalid_fault_rejected_at_plan_construction(self, fault):
        with pytest.raises(FaultError):
            FaultPlan([fault])

    def test_non_fault_rejected(self):
        with pytest.raises(FaultError, match="not a fault"):
            FaultPlan(["core_loss"])

    def test_valid_faults_accepted(self):
        plan = FaultPlan([
            CoreLoss(at=0.0, cores=1),
            LinkDegrade(at=2.0, duration=1.0, bandwidth_factor=0.1),
            ObjectDrop(step=0),
        ])
        assert len(plan) == 3


class TestOrdering:
    def test_timed_faults_sorted_by_firing_time(self):
        late = CoreRestore(at=9.0, cores=2)
        early = CoreLoss(at=1.0, cores=2)
        plan = FaultPlan([late, early])
        assert plan.faults == (early, late)

    def test_step_faults_sort_after_timed_in_construction_order(self):
        drop_b = ObjectDrop(step=7)
        drop_a = ObjectDrop(step=3)
        timed = Straggler(at=5.0, duration=1.0, factor=2.0)
        plan = FaultPlan([drop_b, timed, drop_a])
        assert plan.faults == (timed, drop_b, drop_a)

    def test_equal_times_keep_construction_order(self):
        loss = CoreLoss(at=4.0, cores=1)
        restore = CoreRestore(at=4.0, cores=1)
        plan = FaultPlan([restore, loss])
        assert plan.faults == (restore, loss)


class TestViews:
    def test_timed_excludes_step_faults(self):
        plan = FaultPlan([
            CoreLoss(at=1.0, cores=2),
            ObjectDrop(step=0),
            ObjectCorrupt(step=1),
        ])
        assert all(hasattr(f, "at") for f in plan.timed())
        assert len(plan.timed()) == 1

    def test_drops_and_corrupts_aggregate_per_step(self):
        plan = FaultPlan([
            ObjectDrop(step=2, count=2),
            ObjectDrop(step=2, count=1),
            ObjectDrop(step=5, count=1),
            ObjectCorrupt(step=2, repeats=3),
        ])
        assert plan.drops_by_step() == {2: 3, 5: 1}
        assert plan.corrupts_by_step() == {2: 3}

    def test_empty_plan(self):
        plan = FaultPlan.empty()
        assert len(plan) == 0
        assert list(plan) == []
        assert plan.timed() == ()
        assert plan.drops_by_step() == {}
        assert plan.describe() == "(empty fault plan)"


class TestIdentity:
    def test_cache_token_stable_across_construction_order(self):
        a = FaultPlan([CoreLoss(at=1.0, cores=2), Straggler(at=3.0, duration=1.0, factor=2.0)])
        b = FaultPlan([Straggler(at=3.0, duration=1.0, factor=2.0), CoreLoss(at=1.0, cores=2)])
        assert a.cache_token() == b.cache_token()

    def test_cache_token_distinguishes_plans(self):
        a = FaultPlan([CoreLoss(at=1.0, cores=2)])
        b = FaultPlan([CoreLoss(at=1.0, cores=3)])
        assert a.cache_token() != b.cache_token()
        assert a.cache_token() != FaultPlan.empty().cache_token()

    def test_cache_token_format(self):
        token = FaultPlan.empty().cache_token()
        assert token.startswith("faultplan:")
        assert len(token) == len("faultplan:") + 16

    def test_as_dicts_carries_kind_and_fields(self):
        plan = FaultPlan([LinkDegrade(at=1.0, duration=2.0, bandwidth_factor=0.5)])
        (payload,) = plan.as_dicts()
        assert payload["kind"] == "network.degrade"
        assert payload["at"] == 1.0
        assert payload["duration"] == 2.0
        assert payload["bandwidth_factor"] == 0.5
        assert payload["src"] == "sim" and payload["dst"] == "staging"

    def test_describe_lists_every_fault(self):
        plan = FaultPlan([CoreLoss(at=1.0, cores=2), ObjectDrop(step=4)])
        text = plan.describe()
        assert "staging.core_loss" in text
        assert "staging.object_drop" in text
        assert "step=4" in text
