"""Failure-injection tests: the system must fail loudly and recover cleanly."""

import numpy as np
import pytest

from repro.errors import ResourceError, SimulationError, StagingError, WorkflowError
from repro.hpc.event import Interrupt, Simulator
from repro.hpc.network import Network
from repro.hpc.resources import Resource
from repro.staging.area import StagingArea


class TestInterruptedWaiters:
    def test_interrupted_resource_waiter_does_not_block_queue(self):
        """A process interrupted while queued must not wedge the FCFS queue."""
        sim = Simulator()
        res = Resource(sim, capacity=1)
        served = []

        def holder(sim):
            yield res.request(1)
            yield sim.timeout(10.0)
            res.release(1)

        def doomed(sim):
            try:
                yield res.request(1)
            except Interrupt:
                return "interrupted"

        def patient(sim):
            yield res.request(1)
            served.append(sim.now)
            res.release(1)

        sim.process(holder(sim))
        victim = sim.process(doomed(sim))
        sim.process(patient(sim))

        def assassin(sim):
            yield sim.timeout(1.0)
            victim.interrupt()

        sim.process(assassin(sim))
        sim.run()
        assert victim.value == "interrupted"
        assert served == [10.0]

    def test_interrupting_transfer_waiter_leaves_network_consistent(self):
        sim = Simulator()
        net = Network(sim)
        net.add_link("a", "b", bandwidth=10.0)

        def waiter(sim):
            try:
                yield net.transfer("a", "b", 100.0)
            except Interrupt:
                return "gone"

        victim = sim.process(waiter(sim))

        def assassin(sim):
            yield sim.timeout(1.0)
            victim.interrupt()

        sim.process(assassin(sim))
        # Another transfer afterwards still completes normally.
        def follow_up(sim):
            yield sim.timeout(2.0)
            done = net.transfer("a", "b", 50.0)
            yield done
            return sim.now

        follower = sim.process(follow_up(sim))
        sim.run()
        assert victim.value == "gone"
        assert np.isfinite(follower.value)


class TestStagingFailures:
    def test_worker_survives_zero_work_jobs(self):
        sim = Simulator()
        net = Network(sim)
        net.add_link("sim", "staging", bandwidth=100.0)
        area = StagingArea(sim, net, core_rate=10.0, total_cores=4)
        jobs = [area.submit(i, 0.0, 0.0) for i in range(3)]
        sim.run(sim.all_of([j.done for j in jobs]))
        assert len(area.completed) == 3

    def test_negative_job_rejected_before_state_changes(self):
        sim = Simulator()
        net = Network(sim)
        net.add_link("sim", "staging", bandwidth=100.0)
        area = StagingArea(sim, net, core_rate=10.0, total_cores=4,
                           memory_bytes=1000.0)
        with pytest.raises(StagingError):
            area.submit(0, 10.0, -1.0)
        # The failed submit must not leak memory accounting.
        assert area.memory_used == 0.0
        assert area.bytes_ingested == 0.0

    def test_oversized_step_raises_workflow_error(self):
        """A step that cannot fit staging memory even when empty must fail
        loudly in static in-transit mode, not deadlock."""
        from repro.hpc.systems import titan
        from repro.workflow.config import Mode, WorkflowConfig
        from repro.workflow.driver import run_workflow
        from repro.workload.trace import StepRecord, WorkloadTrace

        trace = WorkloadTrace(
            "huge", 3, 4, 8.0,
            [StepRecord(1, 1e6, 10**7, 1e18, 1e9, np.full(4, 2.5e8))],
        )
        config = WorkflowConfig(mode=Mode.STATIC_INTRANSIT, sim_cores=64,
                                staging_cores=4, spec=titan())
        with pytest.raises(WorkflowError, match="exceed staging memory"):
            run_workflow(config, trace)


class TestKernelFaultBarriers:
    def test_failed_event_poisons_all_waiters(self):
        sim = Simulator()
        evt = sim.event()
        outcomes = []

        def waiter(sim, tag):
            try:
                yield evt
            except RuntimeError:
                outcomes.append(tag)

        for tag in ("a", "b", "c"):
            sim.process(waiter(sim, tag))

        def failer(sim):
            yield sim.timeout(1.0)
            evt.fail(RuntimeError("poisoned"))

        sim.process(failer(sim))
        sim.run()
        assert sorted(outcomes) == ["a", "b", "c"]

    def test_crash_in_one_process_aborts_run_deterministically(self):
        sim = Simulator()

        def healthy(sim):
            for _ in range(100):
                yield sim.timeout(1.0)

        def crasher(sim):
            yield sim.timeout(5.0)
            raise ValueError("injected fault")

        sim.process(healthy(sim))
        sim.process(crasher(sim))
        with pytest.raises(ValueError, match="injected fault"):
            sim.run()
        assert sim.now == 5.0  # aborted exactly at the fault

    def test_release_after_resize_down_is_safe(self):
        sim = Simulator()
        res = Resource(sim, capacity=8)

        def proc(sim):
            yield res.request(6)
            res.resize(2)
            yield sim.timeout(1.0)
            res.release(6)
            return res.available

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == 2

    def test_scheduling_in_the_past_rejected(self):
        sim = Simulator()

        def proc(sim):
            yield sim.timeout(5.0)

        sim.process(proc(sim))
        sim.run()
        with pytest.raises(SimulationError):
            sim._schedule_at(1.0, lambda: None)

    def test_machine_rejects_invalid_compute(self):
        from repro.hpc.machine import Machine

        sim = Simulator()
        m = Machine(sim, node_count=2, cores_per_node=4,
                    memory_per_node=2**30, core_rate=1e4)
        with pytest.raises(ResourceError):
            m.compute_time(1e6, cores=0)
