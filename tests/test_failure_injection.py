"""Failure-injection tests: the system must fail loudly and recover cleanly.

The kernel-level cases below inject faults by hand (interrupts, failed
events, crashing processes); the classes at the bottom drive the same
contracts through :mod:`repro.faults` — the declarative fault-plan
subsystem — and assert its recovery policies: bounded retry, graceful
in-situ degradation, and loud failure when recovery is impossible.
"""

import numpy as np
import pytest

from repro.errors import ResourceError, SimulationError, StagingError, WorkflowError
from repro.faults import CoreLoss, CoreRestore, FaultInjector, FaultPlan, ObjectDrop
from repro.hpc.event import Interrupt, Simulator
from repro.hpc.network import Network
from repro.hpc.resources import Resource
from repro.staging.area import StagingArea
from repro.staging.messaging import RetryPolicy


def faulted_area(plan, total_cores=4, retry_policy=None):
    """A minimal simulator/network/staging trio wired to ``plan``."""
    injector = FaultInjector(plan)
    sim = Simulator(faults=injector)
    net = Network(sim)
    net.add_link("sim", "staging", bandwidth=100.0, latency=0.0)
    area = StagingArea(sim, net, core_rate=10.0, total_cores=total_cores,
                       faults=injector, retry_policy=retry_policy)
    injector.attach_network(net)
    injector.arm()
    return sim, area


class TestInterruptedWaiters:
    def test_interrupted_resource_waiter_does_not_block_queue(self):
        """A process interrupted while queued must not wedge the FCFS queue."""
        sim = Simulator()
        res = Resource(sim, capacity=1)
        served = []

        def holder(sim):
            yield res.request(1)
            yield sim.timeout(10.0)
            res.release(1)

        def doomed(sim):
            try:
                yield res.request(1)
            except Interrupt:
                return "interrupted"

        def patient(sim):
            yield res.request(1)
            served.append(sim.now)
            res.release(1)

        sim.process(holder(sim))
        victim = sim.process(doomed(sim))
        sim.process(patient(sim))

        def assassin(sim):
            yield sim.timeout(1.0)
            victim.interrupt()

        sim.process(assassin(sim))
        sim.run()
        assert victim.value == "interrupted"
        assert served == [10.0]

    def test_interrupting_transfer_waiter_leaves_network_consistent(self):
        sim = Simulator()
        net = Network(sim)
        net.add_link("a", "b", bandwidth=10.0)

        def waiter(sim):
            try:
                yield net.transfer("a", "b", 100.0)
            except Interrupt:
                return "gone"

        victim = sim.process(waiter(sim))

        def assassin(sim):
            yield sim.timeout(1.0)
            victim.interrupt()

        sim.process(assassin(sim))
        # Another transfer afterwards still completes normally.
        def follow_up(sim):
            yield sim.timeout(2.0)
            done = net.transfer("a", "b", 50.0)
            yield done
            return sim.now

        follower = sim.process(follow_up(sim))
        sim.run()
        assert victim.value == "gone"
        assert np.isfinite(follower.value)


class TestStagingFailures:
    def test_worker_survives_zero_work_jobs(self):
        sim = Simulator()
        net = Network(sim)
        net.add_link("sim", "staging", bandwidth=100.0)
        area = StagingArea(sim, net, core_rate=10.0, total_cores=4)
        jobs = [area.submit(i, 0.0, 0.0) for i in range(3)]
        sim.run(sim.all_of([j.done for j in jobs]))
        assert len(area.completed) == 3

    def test_negative_job_rejected_before_state_changes(self):
        sim = Simulator()
        net = Network(sim)
        net.add_link("sim", "staging", bandwidth=100.0)
        area = StagingArea(sim, net, core_rate=10.0, total_cores=4,
                           memory_bytes=1000.0)
        with pytest.raises(StagingError):
            area.submit(0, 10.0, -1.0)
        # The failed submit must not leak memory accounting.
        assert area.memory_used == 0.0
        assert area.bytes_ingested == 0.0

    def test_oversized_step_raises_workflow_error(self):
        """A step that cannot fit staging memory even when empty must fail
        loudly in static in-transit mode, not deadlock."""
        from repro.hpc.systems import titan
        from repro.workflow.config import Mode, WorkflowConfig
        from repro.workflow.driver import run_workflow
        from repro.workload.trace import StepRecord, WorkloadTrace

        trace = WorkloadTrace(
            "huge", 3, 4, 8.0,
            [StepRecord(1, 1e6, 10**7, 1e18, 1e9, np.full(4, 2.5e8))],
        )
        config = WorkflowConfig(mode=Mode.STATIC_INTRANSIT, sim_cores=64,
                                staging_cores=4, spec=titan())
        with pytest.raises(WorkflowError, match="exceed staging memory"):
            run_workflow(config, trace)


class TestKernelFaultBarriers:
    def test_failed_event_poisons_all_waiters(self):
        sim = Simulator()
        evt = sim.event()
        outcomes = []

        def waiter(sim, tag):
            try:
                yield evt
            except RuntimeError:
                outcomes.append(tag)

        for tag in ("a", "b", "c"):
            sim.process(waiter(sim, tag))

        def failer(sim):
            yield sim.timeout(1.0)
            evt.fail(RuntimeError("poisoned"))

        sim.process(failer(sim))
        sim.run()
        assert sorted(outcomes) == ["a", "b", "c"]

    def test_crash_in_one_process_aborts_run_deterministically(self):
        sim = Simulator()

        def healthy(sim):
            for _ in range(100):
                yield sim.timeout(1.0)

        def crasher(sim):
            yield sim.timeout(5.0)
            raise ValueError("injected fault")

        sim.process(healthy(sim))
        sim.process(crasher(sim))
        with pytest.raises(ValueError, match="injected fault"):
            sim.run()
        assert sim.now == 5.0  # aborted exactly at the fault

    def test_release_after_resize_down_is_safe(self):
        sim = Simulator()
        res = Resource(sim, capacity=8)

        def proc(sim):
            yield res.request(6)
            res.resize(2)
            yield sim.timeout(1.0)
            res.release(6)
            return res.available

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == 2

    def test_scheduling_in_the_past_rejected(self):
        sim = Simulator()

        def proc(sim):
            yield sim.timeout(5.0)

        sim.process(proc(sim))
        sim.run()
        with pytest.raises(SimulationError):
            sim._schedule_at(1.0, lambda: None)

    def test_machine_rejects_invalid_compute(self):
        from repro.hpc.machine import Machine

        sim = Simulator()
        m = Machine(sim, node_count=2, cores_per_node=4,
                    memory_per_node=2**30, core_rate=1e4)
        with pytest.raises(ResourceError):
            m.compute_time(1e6, cores=0)


class TestPlannedCoreLoss:
    """Core-loss recovery driven through a declarative FaultPlan."""

    def test_interrupted_job_reruns_from_staged_copy(self):
        """A job aborted by core loss finishes after the restore without
        re-ingesting — the staged copy survives the failure."""
        plan = FaultPlan([
            CoreLoss(at=1.5, cores=4),   # mid-service: ingest ends at 1.0
            CoreRestore(at=5.0, cores=4),
        ])
        sim, area = faulted_area(plan)
        job = area.submit(0, nbytes=100.0, work_units=40.0)  # 1s service
        sim.run(job.done)
        assert len(area.completed) == 1
        assert job.finished_at > 5.0  # parked until the restore
        assert area.bytes_ingested == 100.0  # ingested exactly once

    def test_submit_to_dead_staging_raises(self):
        plan = FaultPlan([CoreLoss(at=1.0, cores=4)])
        sim, area = faulted_area(plan)
        sim.run()
        assert not area.reachable
        with pytest.raises(StagingError, match="unreachable"):
            area.submit(0, nbytes=10.0, work_units=1.0)

    def test_permanent_blackout_with_queued_work_fails_loudly(self):
        """No restore ever comes: the run must end with an error, not
        complete silently with analysis missing."""
        plan = FaultPlan([CoreLoss(at=0.5, cores=4)])
        sim, area = faulted_area(plan)
        job = area.submit(0, nbytes=100.0, work_units=40.0)
        with pytest.raises(SimulationError, match="drained"):
            sim.run(job.done)


class TestPlannedRetry:
    """In-flight corruption recovery: bounded retry, loud exhaustion."""

    def test_retry_exhaustion_raises_staging_error(self):
        plan = FaultPlan([ObjectDrop(step=0, count=3)])
        sim, area = faulted_area(
            plan, retry_policy=RetryPolicy(max_attempts=3, base_delay=0.1))
        area.submit(0, nbytes=100.0, work_units=10.0)
        with pytest.raises(StagingError):
            sim.run()

    def test_backoff_delays_are_exponential(self):
        delays = []
        plan = FaultPlan([ObjectDrop(step=0, count=2)])
        injector = FaultInjector(plan)
        sim = Simulator(faults=injector)
        net = Network(sim)
        net.add_link("sim", "staging", bandwidth=100.0, latency=0.0)
        policy = RetryPolicy(max_attempts=4, base_delay=0.5, backoff_factor=2.0)
        area = StagingArea(sim, net, core_rate=10.0, total_cores=4,
                           faults=injector, retry_policy=policy)
        injector.attach_network(net)
        injector.arm()
        assert [policy.delay(k) for k in range(3)] == [0.5, 1.0, 2.0]
        job = area.submit(0, nbytes=100.0, work_units=10.0)
        sim.run(job.done)
        assert len(area.completed) == 1


class TestPlannedDegradation:
    """A mid-run blackout degrades the workflow to in-situ and completes."""

    def test_blackout_workflow_completes_in_situ(self):
        from repro.core.actions import Placement
        from repro.hpc.systems import titan
        from repro.workflow.config import Mode, WorkflowConfig
        from repro.workflow.driver import run_workflow
        from repro.workload.synthetic import SyntheticAMRConfig, synthetic_amr_trace

        def trace():
            return synthetic_amr_trace(SyntheticAMRConfig(
                steps=8, nranks=64, base_cells=2e7, sim_cost_per_cell=1.0,
                growth=1.5, analysis_growth_exponent=1.0, seed=0))

        config = WorkflowConfig(mode=Mode.STATIC_INTRANSIT, sim_cores=1024,
                                staging_cores=64, spec=titan(),
                                analysis_cost_per_cell=0.035)
        baseline = run_workflow(config, trace())
        plan = FaultPlan([
            CoreLoss(at=0.3 * baseline.end_to_end_seconds, cores=64),
            CoreRestore(at=0.7 * baseline.end_to_end_seconds, cores=64),
        ])
        result = run_workflow(config, trace(), faults=plan)
        counts = result.placement_counts()
        # Static in-transit wants everything staged; the fallback forced
        # the dark-window steps in-situ instead of wedging the run.
        assert counts[Placement.IN_SITU] > 0
        assert counts[Placement.IN_TRANSIT] > 0
        assert all(m.analysis_done_at is not None for m in result.steps)
