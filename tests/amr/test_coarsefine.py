"""Tests for restriction and prolongation operators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.amr.coarsefine import prolong, restrict
from repro.errors import GeometryError


class TestRestrict:
    def test_block_average_2d(self):
        fine = np.arange(16, dtype=float).reshape(1, 4, 4)
        coarse = restrict(fine, 2)
        assert coarse.shape == (1, 2, 2)
        assert coarse[0, 0, 0] == pytest.approx((0 + 1 + 4 + 5) / 4)

    def test_constant_preserved(self):
        fine = np.full((2, 8, 8, 8), 3.5)
        coarse = restrict(fine, 2)
        np.testing.assert_allclose(coarse, 3.5)

    def test_ratio_one_identity(self):
        fine = np.random.default_rng(0).normal(size=(1, 4, 4))
        np.testing.assert_array_equal(restrict(fine, 1), fine)

    def test_indivisible_shape_rejected(self):
        with pytest.raises(GeometryError):
            restrict(np.zeros((1, 5, 4)), 2)

    def test_conservation(self):
        rng = np.random.default_rng(1)
        fine = rng.normal(size=(1, 8, 8))
        coarse = restrict(fine, 4)
        assert coarse.sum() * 16 == pytest.approx(fine.sum())


class TestProlong:
    def test_order0_repeats(self):
        coarse = np.array([[1.0, 2.0]])
        fine = prolong(coarse, 2, order=0)
        np.testing.assert_allclose(fine, [[1.0, 1.0, 2.0, 2.0]])

    def test_order1_linear_profile_exact(self):
        # A linear ramp must be reproduced exactly (away from clipped edges).
        coarse = np.arange(8, dtype=float).reshape(1, 8)
        fine = prolong(coarse, 2, order=1)
        expected = (np.arange(16) + 0.5) / 2 - 0.5
        np.testing.assert_allclose(fine[0, 2:-2], expected[2:-2])

    def test_order1_shapes_3d(self):
        coarse = np.zeros((2, 3, 4, 5))
        fine = prolong(coarse, 2, order=1)
        assert fine.shape == (2, 6, 8, 10)

    def test_invalid_params(self):
        with pytest.raises(GeometryError):
            prolong(np.zeros((1, 4)), 0)
        with pytest.raises(GeometryError):
            prolong(np.zeros((1, 4)), 2, order=3)

    @settings(deadline=None, max_examples=40)
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 3), st.integers(1, 10), st.integers(1, 10)),
            elements=st.floats(-100, 100),
        ),
        st.integers(2, 4),
        st.sampled_from([0, 1]),
    )
    def test_prolong_restrict_roundtrip(self, coarse, ratio, order):
        """Conservative prolongation: restrict(prolong(c)) == c exactly."""
        fine = prolong(coarse, ratio, order=order)
        back = restrict(fine, ratio)
        np.testing.assert_allclose(back, coarse, atol=1e-9)

    @settings(deadline=None, max_examples=30)
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 2), st.integers(2, 8), st.integers(2, 8)),
            elements=st.floats(0, 50),
        )
    )
    def test_limited_prolong_no_new_extrema(self, coarse):
        """Order-1 with limiting must not dramatically overshoot the range."""
        fine = prolong(coarse, 2, order=1)
        lo, hi = coarse.min(), coarse.max()
        span = max(hi - lo, 1e-12)
        assert fine.min() >= lo - 0.5 * span - 1e-9
        assert fine.max() <= hi + 0.5 * span + 1e-9
