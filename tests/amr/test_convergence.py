"""Convergence studies: observed order of accuracy of the solvers."""

import numpy as np
import pytest

from repro.amr.advection import AdvectionDiffusionSolver
from repro.amr.box import Box
from repro.amr.hierarchy import AMRHierarchy
from repro.amr.stepper import AMRStepper
from repro.amr.validation import ConvergenceStudy, convergence_order, l1_error, l2_error
from repro.errors import GeometryError


class TestErrorNorms:
    def test_l1_l2_basics(self):
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([1.0, 2.0, 5.0])
        assert l1_error(a, b) == pytest.approx(2.0 / 3.0)
        assert l2_error(a, b) == pytest.approx(np.sqrt(4.0 / 3.0))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(GeometryError):
            l1_error(np.zeros(3), np.zeros(4))


class TestConvergenceOrder:
    def test_synthetic_second_order(self):
        study = convergence_order(lambda n: 100.0 / n**2, [16, 32, 64, 128])
        assert study.order == pytest.approx(2.0, abs=1e-10)
        assert all(o == pytest.approx(2.0) for o in study.pairwise_orders())

    def test_validation(self):
        with pytest.raises(GeometryError):
            convergence_order(lambda n: 1.0 / n, [16])
        with pytest.raises(GeometryError):
            convergence_order(lambda n: 1.0 / n, [32, 16])
        with pytest.raises(GeometryError):
            convergence_order(lambda n: 0.0, [16, 32])

    def test_study_is_frozen(self):
        study = ConvergenceStudy((2, 4), (1.0, 0.5), 1.0)
        with pytest.raises(AttributeError):
            study.order = 2.0


class TestAdvectionOrder:
    @staticmethod
    def _advect_error(n: int) -> float:
        """Advect a smooth sine profile one full period around the
        periodic domain; the exact solution is the initial condition."""
        h = AMRHierarchy(Box((0,), (n - 1,)), ncomp=1, nghost=2,
                         max_levels=1, max_box_size=max(32, n),
                         dx0=1.0 / n, periodic=True)
        solver = AdvectionDiffusionSolver((1.0,), nu=0.0, cfl=0.5)
        h.levels[0].data.set_from_function(
            lambda x: np.sin(2 * np.pi * x)[None, ...], dx=h.dx0
        )
        stepper = AMRStepper(h, solver, regrid_interval=0, initialize=False)
        while stepper.time < 1.0 - 1e-12:
            stepper.step()
        final = h.levels[0].data.to_dense(h.level_domain(0))[0]
        x = (np.arange(n) + 0.5) / n
        exact = np.sin(2 * np.pi * (x - stepper.time))
        return l1_error(final, exact)

    def test_upwind_is_first_order(self):
        study = convergence_order(self._advect_error, [32, 64, 128])
        # First-order upwind: observed order ~1 (within discretization
        # noise) and errors strictly decreasing.
        assert 0.7 <= study.order <= 1.3
        assert study.errors[0] > study.errors[1] > study.errors[2]
