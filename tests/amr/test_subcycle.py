"""Tests for Berger-Oliger subcycled time stepping."""

import numpy as np
import pytest

from repro.amr.advection import AdvectionDiffusionSolver
from repro.amr.box import Box
from repro.amr.godunov import PolytropicGasSolver
from repro.amr.hierarchy import AMRHierarchy
from repro.amr.stepper import AMRStepper
from repro.amr.subcycle import SubcycledStepper


def make_hierarchy(n=32, max_levels=2, ncomp=1):
    return AMRHierarchy(
        Box((0, 0), (n - 1, n - 1)), ncomp=ncomp, nghost=2,
        max_levels=max_levels, max_box_size=16, dx0=1.0 / n, periodic=True,
    )


def refine_center(h, frac=0.3, center=0.35):
    n = h.domain.shape[0]
    mask = np.zeros(h.domain.shape, dtype=bool)
    lo = int(n * (center - frac / 2))
    hi = int(n * (center + frac / 2))
    mask[lo:hi, lo:hi] = True
    h.regrid({0: mask})


def advection_solver():
    return AdvectionDiffusionSolver((1.0, 0.5), nu=0.0,
                                    blob_center=(0.35, 0.35), blob_radius=0.12)


class TestCoarseDt:
    def test_subcycled_dt_is_coarse_cfl(self):
        h = make_hierarchy()
        refine_center(h)
        solver = advection_solver()
        solver.initialize(h)
        sub = SubcycledStepper(h, solver, regrid_interval=0, initialize=False)
        # With a uniform velocity, the coarse CFL limit is r x the global
        # (finest-level) limit the non-subcycled stepper would use.
        assert sub.coarse_dt() == pytest.approx(2 * solver.stable_dt(h))

    def test_single_level_matches_plain_stepper(self):
        h1 = make_hierarchy(max_levels=1)
        h2 = make_hierarchy(max_levels=1)
        s1 = AMRStepper(h1, advection_solver(), regrid_interval=0)
        s2 = SubcycledStepper(h2, advection_solver(), regrid_interval=0)
        s1.run(5)
        s2.run(5)
        assert s1.time == pytest.approx(s2.time)
        d1 = h1.levels[0].data.to_dense(h1.level_domain(0))
        d2 = h2.levels[0].data.to_dense(h2.level_domain(0))
        np.testing.assert_allclose(d1, d2, atol=1e-12)


class TestSubcycledConservation:
    def _integral(self, h):
        return float(h.levels[0].data.to_dense(h.level_domain(0)).sum())

    def test_conservation_with_reflux(self):
        h = make_hierarchy()
        refine_center(h)
        stepper = SubcycledStepper(h, advection_solver(), regrid_interval=0,
                                   reflux=True, initialize=False)
        advection_solver().initialize(h)
        h.average_down()
        before = self._integral(h)
        stepper.run(15)
        after = self._integral(h)
        assert after == pytest.approx(before, rel=1e-11)

    def test_conservation_gas_solver(self):
        h = make_hierarchy(ncomp=4)
        solver = PolytropicGasSolver(tag_threshold=0.05)
        stepper = SubcycledStepper(h, solver, regrid_interval=0, reflux=True)
        refine_center(h, frac=0.4, center=0.5)
        dense0 = h.levels[0].data.to_dense(h.level_domain(0))
        mass0, energy0 = dense0[0].sum(), dense0[3].sum()
        stepper.run(10)
        dense1 = h.levels[0].data.to_dense(h.level_domain(0))
        assert dense1[0].sum() == pytest.approx(mass0, rel=1e-10)
        assert dense1[3].sum() == pytest.approx(energy0, rel=1e-8)

    def test_reflux_off_leaks(self):
        h = make_hierarchy()
        refine_center(h)
        stepper = SubcycledStepper(h, advection_solver(), regrid_interval=0,
                                   reflux=False, initialize=False)
        advection_solver().initialize(h)
        h.average_down()
        before = self._integral(h)
        stepper.run(15)
        drift = abs(self._integral(h) - before) / abs(before)
        assert drift > 1e-9


class TestSubcycledAccuracy:
    def test_matches_nonsubcycled_solution(self):
        """Over the same physical time the subcycled and non-subcycled
        solutions must agree closely (both first-order in time)."""
        h_sub = make_hierarchy()
        h_plain = make_hierarchy()
        for h in (h_sub, h_plain):
            refine_center(h)
        sub = SubcycledStepper(h_sub, advection_solver(), regrid_interval=0,
                               reflux=True, initialize=False)
        advection_solver().initialize(h_sub)
        plain = AMRStepper(h_plain, advection_solver(), regrid_interval=0,
                           reflux=True, initialize=False)
        advection_solver().initialize(h_plain)
        sub.run(5)
        while plain.time < sub.time - 1e-12:
            plain.step()
        d_sub = h_sub.levels[0].data.to_dense(h_sub.level_domain(0))
        d_plain = h_plain.levels[0].data.to_dense(h_plain.level_domain(0))
        assert np.abs(d_sub - d_plain).max() < 0.02

    def test_fewer_fine_updates_than_equal_dt(self):
        """Subcycling's point: the coarse level takes r-times fewer steps.

        Over the same physical time, the subcycled run performs roughly
        half the total work of the non-subcycled run (2 levels, r=2)."""
        h_sub = make_hierarchy()
        h_plain = make_hierarchy()
        for h in (h_sub, h_plain):
            refine_center(h)
        sub = SubcycledStepper(h_sub, advection_solver(), regrid_interval=0,
                               reflux=False, initialize=False)
        advection_solver().initialize(h_sub)
        plain = AMRStepper(h_plain, advection_solver(), regrid_interval=0,
                           reflux=False, initialize=False)
        advection_solver().initialize(h_plain)
        sub.run(4)
        work_sub = sum(s.work_units for s in sub.history)
        while plain.time < sub.time - 1e-12:
            plain.step()
        work_plain = sum(s.work_units for s in plain.history)
        # Note: SubcycledStepper counts fine substeps in work_units.
        assert work_sub < 0.8 * work_plain

    def test_three_level_run(self):
        h = make_hierarchy(n=32, max_levels=3)
        solver = advection_solver()
        stepper = SubcycledStepper(h, solver, regrid_interval=2, reflux=True)
        stats = stepper.run(8)
        assert len(stats) == 8
        assert all(np.isfinite(s.dt) for s in stats)
        dense = h.levels[0].data.to_dense(h.level_domain(0))
        assert np.isfinite(dense).all()
