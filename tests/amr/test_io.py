"""Tests for checkpoint/restart I/O."""

import numpy as np
import pytest

from repro.amr.advection import AdvectionDiffusionSolver
from repro.amr.box import Box
from repro.amr.hierarchy import AMRHierarchy
from repro.amr.io import read_checkpoint, write_checkpoint
from repro.amr.stepper import AMRStepper
from repro.errors import HierarchyError


def run_some(n=32, steps=6):
    h = AMRHierarchy(Box((0, 0), (n - 1, n - 1)), ncomp=1, nghost=2,
                     max_levels=2, max_box_size=16, dx0=1.0 / n, periodic=True)
    solver = AdvectionDiffusionSolver((1.0, 0.5), tag_threshold=0.05)
    stepper = AMRStepper(h, solver, regrid_interval=3)
    stepper.run(steps)
    return h, stepper


class TestCheckpointRoundtrip:
    def test_bit_exact_state(self, tmp_path):
        h, stepper = run_some()
        path = tmp_path / "chk.npz"
        write_checkpoint(h, path, time=stepper.time, step=stepper.step_count)
        restored, time, step = read_checkpoint(path)
        assert time == stepper.time
        assert step == stepper.step_count
        assert len(restored.levels) == len(h.levels)
        for orig, back in zip(h.levels, restored.levels):
            assert back.layout.boxes == orig.layout.boxes
            assert back.layout.ranks == orig.layout.ranks
            for a, b in zip(orig.data.data, back.data.data):
                np.testing.assert_array_equal(a, b)

    def test_restart_continues_identically(self, tmp_path):
        h1, stepper1 = run_some(steps=4)
        path = tmp_path / "chk.npz"
        write_checkpoint(h1, path, time=stepper1.time, step=stepper1.step_count)

        # Continue the original for 4 more steps.
        stepper1.run(4)

        # Restart from the checkpoint and run the same 4 steps.
        h2, time, step = read_checkpoint(path)
        solver = AdvectionDiffusionSolver((1.0, 0.5), tag_threshold=0.05)
        stepper2 = AMRStepper(h2, solver, regrid_interval=3, initialize=False)
        stepper2.time = time
        stepper2.step_count = step
        stepper2.run(4)

        d1 = h1.levels[0].data.to_dense(h1.level_domain(0))
        d2 = h2.levels[0].data.to_dense(h2.level_domain(0))
        np.testing.assert_allclose(d1, d2, atol=1e-13)
        assert stepper1.time == pytest.approx(stepper2.time)

    def test_geometry_parameters_restored(self, tmp_path):
        h, _ = run_some()
        path = tmp_path / "chk.npz"
        write_checkpoint(h, path)
        restored, _, _ = read_checkpoint(path)
        assert restored.domain == h.domain
        assert restored.ref_ratio == h.ref_ratio
        assert restored.dx0 == h.dx0
        assert restored.periodic == h.periodic

    def test_not_a_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, a=np.zeros(3))
        with pytest.raises(HierarchyError):
            read_checkpoint(path)
