"""Tests for the polytropic-gas (Euler) Godunov solver."""

import numpy as np
import pytest

from repro.amr.box import Box
from repro.amr.godunov import PolytropicGasSolver
from repro.amr.hierarchy import AMRHierarchy
from repro.amr.stepper import AMRStepper
from repro.errors import GeometryError


def gas_hierarchy(n=32, ndim=2, max_levels=1, periodic=True):
    domain = Box(tuple(0 for _ in range(ndim)), tuple(n - 1 for _ in range(ndim)))
    return AMRHierarchy(
        domain, ncomp=ndim + 2, nghost=2, max_levels=max_levels,
        max_box_size=16, dx0=1.0 / n, periodic=periodic,
    )


class TestConfig:
    def test_bad_params_rejected(self):
        with pytest.raises(GeometryError):
            PolytropicGasSolver(gamma=1.0)
        with pytest.raises(GeometryError):
            PolytropicGasSolver(cfl=1.5)
        with pytest.raises(GeometryError):
            PolytropicGasSolver(order=3)

    def test_ncomp_requires_initialization(self):
        solver = PolytropicGasSolver()
        with pytest.raises(GeometryError):
            _ = solver.ncomp

    def test_ncomp_mismatch_detected(self):
        h = gas_hierarchy(ndim=2)
        bad = AMRHierarchy(Box((0, 0), (31, 31)), ncomp=3, nghost=2,
                           max_levels=1, dx0=1.0 / 32)
        solver = PolytropicGasSolver()
        with pytest.raises(GeometryError):
            solver.initialize(bad)
        solver.initialize(h)
        assert solver.ncomp == 4


class TestPrimitives:
    def test_roundtrip(self):
        solver = PolytropicGasSolver(gamma=1.4)
        U = np.zeros((4, 3, 3))
        U[0] = 2.0  # rho
        U[1] = 2.0 * 0.5  # rho*u
        U[2] = 0.0
        p_set = 1.5
        U[3] = p_set / 0.4 + 0.5 * 2.0 * 0.25
        rho, vel, p = solver.primitives(U)
        np.testing.assert_allclose(rho, 2.0)
        np.testing.assert_allclose(vel[0], 0.5)
        np.testing.assert_allclose(p, p_set)

    def test_pressure_floor(self):
        solver = PolytropicGasSolver()
        U = np.zeros((4, 2, 2))
        U[0] = 1.0
        U[3] = -5.0  # unphysical
        _, _, p = solver.primitives(U)
        assert (p > 0).all()

    def test_sound_speed_ambient(self):
        solver = PolytropicGasSolver(gamma=1.4)
        U = np.zeros((4, 2, 2))
        U[0] = 1.0
        U[3] = 1.0 / 0.4
        np.testing.assert_allclose(solver.sound_speed(U), np.sqrt(1.4), rtol=1e-12)


class TestConservation:
    @pytest.mark.parametrize("order", [1, 2])
    def test_mass_momentum_energy_conserved_periodic(self, order):
        h = gas_hierarchy(n=32)
        solver = PolytropicGasSolver(order=order)
        stepper = AMRStepper(h, solver, regrid_interval=0)
        dense0 = h.levels[0].data.to_dense(h.level_domain(0))
        totals0 = dense0.reshape(4, -1).sum(axis=1)
        stepper.run(10)
        dense1 = h.levels[0].data.to_dense(h.level_domain(0))
        totals1 = dense1.reshape(4, -1).sum(axis=1)
        # Mass and energy conserved tightly; momentum stays ~0 by symmetry.
        assert totals1[0] == pytest.approx(totals0[0], rel=1e-12)
        assert totals1[3] == pytest.approx(totals0[3], rel=1e-10)
        assert abs(totals1[1]) < 1e-8
        assert abs(totals1[2]) < 1e-8

    def test_positivity_through_blast(self):
        h = gas_hierarchy(n=32)
        solver = PolytropicGasSolver(blast_pressure_jump=100.0)
        stepper = AMRStepper(h, solver, regrid_interval=0)
        stepper.run(30)
        dense = h.levels[0].data.to_dense(h.level_domain(0))
        rho, vel, p = solver.primitives(dense)
        assert (rho > 0).all()
        assert (p > 0).all()
        assert np.isfinite(dense).all()


class TestBlastPhysics:
    def test_shock_expands_outward(self):
        n = 48
        h = gas_hierarchy(n=n)
        solver = PolytropicGasSolver()
        stepper = AMRStepper(h, solver, regrid_interval=0)

        def shock_radius():
            # Outermost cell whose pressure exceeds ambient by 10%: the
            # forward shock front.
            dense = h.levels[0].data.to_dense(h.level_domain(0))
            _, _, p = solver.primitives(dense)
            ys, xs = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
            r = np.hypot((ys + 0.5) / n - 0.5, (xs + 0.5) / n - 0.5)
            return r[p > 1.1].max()

        r0 = shock_radius()
        stepper.run(15)
        r1 = shock_radius()
        assert r1 > r0

    def test_quadrant_symmetry_preserved(self):
        n = 32
        h = gas_hierarchy(n=n)
        solver = PolytropicGasSolver()
        stepper = AMRStepper(h, solver, regrid_interval=0)
        stepper.run(10)
        rho = h.levels[0].data.to_dense(h.level_domain(0))[0]
        np.testing.assert_allclose(rho, rho[::-1, :], atol=1e-9)
        np.testing.assert_allclose(rho, rho[:, ::-1], atol=1e-9)
        np.testing.assert_allclose(rho, rho.T, atol=1e-9)

    def test_sod_shock_tube_structure(self):
        """1-D Sod problem: density must remain monotone non-increasing
        across the classic left-to-right wave structure, bounded by the
        initial states, with an intermediate plateau."""
        n = 128
        domain = Box((0,), (n - 1,))
        h = AMRHierarchy(domain, ncomp=3, nghost=2, max_levels=1,
                         max_box_size=64, dx0=1.0 / n, periodic=False)
        solver = PolytropicGasSolver(gamma=1.4, order=2)
        solver._ndim = 1

        def sod(x):
            left = x < 0.5
            rho = np.where(left, 1.0, 0.125)
            p = np.where(left, 1.0, 0.1)
            out = np.zeros((3, *x.shape))
            out[0] = rho
            out[2] = p / 0.4
            return out

        h.levels[0].data.set_from_function(sod, dx=h.dx0)
        stepper = AMRStepper(h, solver, regrid_interval=0, initialize=False)
        while stepper.time < 0.15:
            stepper.step()
        rho = h.levels[0].data.to_dense(h.level_domain(0))[0]
        assert rho.max() <= 1.0 + 1e-6
        assert rho.min() >= 0.125 - 1e-6
        # Contact/shock plateau: density near the known star-region value
        # (~0.426 left of contact, ~0.266 right) must appear.
        assert np.any(np.abs(rho - 0.426) < 0.05)
        assert np.any(np.abs(rho - 0.266) < 0.05)

    def test_blast_drives_refinement_growth(self):
        h = gas_hierarchy(n=32, max_levels=2)
        solver = PolytropicGasSolver(tag_threshold=0.05)
        stepper = AMRStepper(h, solver, regrid_interval=2)
        cells0 = h.total_cells()
        stepper.run(12)
        assert h.finest_level == 1
        # The expanding shock surface grows the refined region.
        assert h.total_cells() > cells0

    def test_memory_bytes_grow_with_refinement(self):
        h = gas_hierarchy(n=32, max_levels=2)
        solver = PolytropicGasSolver(tag_threshold=0.05)
        stepper = AMRStepper(h, solver, regrid_interval=2)
        stats = stepper.run(12)
        assert stats[-1].state_bytes > stats[0].state_bytes * 0.9
        assert any(s.regridded for s in stats)
