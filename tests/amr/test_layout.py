"""Tests for BoxLayout and load balancing."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.amr.box import Box
from repro.amr.layout import BoxLayout, load_balance
from repro.errors import GeometryError


def grid_boxes(n, size=4):
    """A row of n disjoint size^2 boxes."""
    return [Box((i * size, 0), (i * size + size - 1, size - 1)) for i in range(n)]


class TestLoadBalance:
    def test_single_rank_gets_everything(self):
        boxes = grid_boxes(5)
        assert load_balance(boxes, 1) == [0] * 5

    def test_equal_boxes_spread_evenly(self):
        boxes = grid_boxes(8)
        ranks = load_balance(boxes, 4)
        counts = np.bincount(ranks, minlength=4)
        assert (counts == 2).all()

    def test_large_box_isolated(self):
        boxes = [Box((0, 0), (31, 31))] + [
            Box((100 + 4 * i, 0), (100 + 4 * i + 1, 1)) for i in range(4)
        ]
        ranks = load_balance(boxes, 2)
        big_rank = ranks[0]
        # All the small boxes go to the other rank.
        assert all(r != big_rank for r in ranks[1:])

    def test_zero_ranks_rejected(self):
        with pytest.raises(GeometryError):
            load_balance(grid_boxes(2), 0)

    def test_deterministic(self):
        boxes = grid_boxes(7)
        assert load_balance(boxes, 3) == load_balance(boxes, 3)

    @given(st.integers(1, 16), st.integers(1, 6))
    def test_balance_quality_bound(self, nboxes, nranks):
        # LPT guarantee: max load <= mean + max single box size.
        boxes = grid_boxes(nboxes)
        ranks = load_balance(boxes, nranks)
        loads = np.zeros(nranks)
        for b, r in zip(boxes, ranks):
            loads[r] += b.size
        assert loads.max() <= loads.sum() / nranks + max(b.size for b in boxes)


class TestBoxLayout:
    def test_total_cells(self):
        layout = BoxLayout(grid_boxes(3))
        assert layout.total_cells == 3 * 16

    def test_overlap_rejected(self):
        with pytest.raises(GeometryError):
            BoxLayout([Box((0, 0), (3, 3)), Box((2, 2), (5, 5))])

    def test_empty_layout_rejected(self):
        with pytest.raises(GeometryError):
            BoxLayout([])

    def test_empty_box_rejected(self):
        with pytest.raises(GeometryError):
            BoxLayout([Box((0, 0), (-1, 3))])

    def test_mixed_dim_rejected(self):
        with pytest.raises(GeometryError):
            BoxLayout([Box((0, 0), (1, 1)), Box((5, 5, 5), (6, 6, 6))])

    def test_explicit_ranks(self):
        layout = BoxLayout(grid_boxes(3), nranks=2, ranks=[0, 1, 0])
        assert layout.ranks == (0, 1, 0)
        assert layout.boxes_on_rank(0) == [0, 2]

    def test_explicit_ranks_validation(self):
        with pytest.raises(GeometryError):
            BoxLayout(grid_boxes(3), nranks=2, ranks=[0, 1])
        with pytest.raises(GeometryError):
            BoxLayout(grid_boxes(3), nranks=2, ranks=[0, 1, 5])

    def test_cells_per_rank_sums_to_total(self):
        layout = BoxLayout(grid_boxes(9), nranks=4)
        assert layout.cells_per_rank().sum() == layout.total_cells

    def test_imbalance_perfect(self):
        layout = BoxLayout(grid_boxes(4), nranks=2)
        assert layout.imbalance() == pytest.approx(1.0)

    def test_covering_box(self):
        layout = BoxLayout([Box((0, 0), (3, 3)), Box((10, 2), (12, 8))])
        assert layout.covering_box() == Box((0, 0), (12, 8))

    def test_neighbors_direct(self):
        a = Box((0, 0), (3, 3))
        b = Box((4, 0), (7, 3))
        c = Box((20, 20), (23, 23))
        layout = BoxLayout([a, b, c])
        nbrs = layout.neighbors(0, radius=1)
        assert [j for j, _ in nbrs] == [1]

    def test_neighbors_periodic_wraparound(self):
        domain = Box((0, 0), (7, 7))
        a = Box((0, 0), (3, 7))
        b = Box((4, 0), (7, 7))
        layout = BoxLayout([a, b])
        nbrs = layout.neighbors(0, radius=1, periodic_domain=domain)
        shifts = {shift for j, shift in nbrs if j == 1}
        # b touches a directly on the right and wraps around on the left.
        assert (0, 0) in shifts
        assert (-8, 0) in shifts or (8, 0) in shifts

    def test_self_periodic_image(self):
        # A box spanning the whole domain is its own periodic neighbour.
        domain = Box((0,), (7,))
        layout = BoxLayout([Box((0,), (7,))])
        nbrs = layout.neighbors(0, radius=1, periodic_domain=domain)
        assert any(j == 0 for j, _ in nbrs)
