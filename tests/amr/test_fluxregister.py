"""Tests for flux registers and coarse-fine refluxing."""

import numpy as np
import pytest

from repro.amr.advection import AdvectionDiffusionSolver
from repro.amr.box import Box
from repro.amr.fluxregister import FluxRegister, assemble_dense_fluxes
from repro.amr.hierarchy import AMRHierarchy
from repro.amr.layout import BoxLayout
from repro.amr.level import LevelData
from repro.amr.stepper import AMRStepper
from repro.errors import HierarchyError


def refined_hierarchy(n=32, frac=0.3):
    """A 2-level hierarchy refined around the blob's initial position."""
    h = AMRHierarchy(
        Box((0, 0), (n - 1, n - 1)), ncomp=1, nghost=2, max_levels=2,
        max_box_size=16, dx0=1.0 / n, periodic=True,
    )
    mask = np.zeros((n, n), dtype=bool)
    lo = int(n * (0.35 - frac / 2))
    hi = int(n * (0.35 + frac / 2))
    mask[lo:hi, lo:hi] = True
    h.regrid({0: mask})
    assert h.finest_level == 1
    return h


def total_integral(h):
    """Composite integral: coarse cells, with covered regions from the fine
    level (valid after average_down)."""
    dense = h.levels[0].data.to_dense(h.level_domain(0))
    return float(dense.sum()) * h.dx(0) ** 2


class TestFluxRegisterGeometry:
    def test_boundary_faces_of_square_patch(self):
        domain = Box((0, 0), (15, 15))
        fine = [Box((4, 4), (7, 7))]  # coarsened fine region: 4x4 cells
        register = FluxRegister(domain, fine, ncomp=1, ref_ratio=2,
                                periodic=False)
        # A 4x4 patch has 4 boundary faces per side per axis.
        assert register.boundary_face_count == 16

    def test_periodic_patch_touching_boundary(self):
        domain = Box((0, 0), (15, 15))
        fine = [Box((0, 4), (3, 7))]  # touches the low-x domain edge
        register = FluxRegister(domain, fine, ncomp=1, ref_ratio=2,
                                periodic=True)
        # x-axis: 4 interior faces at x=4 plus 4 wrap faces at x=0;
        # y-axis: 4 + 4.
        assert register.boundary_face_count == 16

    def test_nonperiodic_patch_touching_boundary(self):
        domain = Box((0, 0), (15, 15))
        fine = [Box((0, 4), (3, 7))]
        register = FluxRegister(domain, fine, ncomp=1, ref_ratio=2,
                                periodic=False)
        # No wrap faces: only the x=4 side along x.
        assert register.boundary_face_count == 12

    def test_fine_box_outside_domain_rejected(self):
        domain = Box((0, 0), (15, 15))
        with pytest.raises(HierarchyError):
            FluxRegister(domain, [Box((20, 20), (23, 23))], 1, 2)

    def test_bad_ratio_rejected(self):
        with pytest.raises(HierarchyError):
            FluxRegister(Box((0, 0), (7, 7)), [Box((0, 0), (1, 1))], 1, 1)


class TestAssembleDenseFluxes:
    def test_shapes_and_values(self):
        layout = BoxLayout([Box((0, 0), (3, 7)), Box((4, 0), (7, 7))])
        data = LevelData(layout, ncomp=1, nghost=2)
        solver = AdvectionDiffusionSolver((1.0, 0.0))
        data.fill(2.0)
        box_fluxes = [solver.compute_fluxes(arr, 1.0) for arr in data.data]
        dense = assemble_dense_fluxes(data, box_fluxes, Box((0, 0), (7, 7)))
        assert dense[0].shape == (1, 9, 8)
        assert dense[1].shape == (1, 8, 9)
        # Constant field, v=(1,0): x-flux = 2 everywhere, y-flux = 0.
        np.testing.assert_allclose(dense[0], 2.0)
        np.testing.assert_allclose(dense[1], 0.0)


class TestRefluxConservation:
    def _drift(self, reflux: bool, steps=20):
        h = refined_hierarchy()
        solver = AdvectionDiffusionSolver((1.0, 0.7), nu=0.0,
                                          blob_center=(0.35, 0.35),
                                          blob_radius=0.12)
        stepper = AMRStepper(h, solver, regrid_interval=0, reflux=reflux)
        before = total_integral(h)
        stepper.run(steps)
        after = total_integral(h)
        return abs(after - before) / before, stepper

    def test_reflux_restores_conservation(self):
        drift_without, _ = self._drift(reflux=False)
        drift_with, stepper = self._drift(reflux=True)
        # Without refluxing the coarse-fine interface leaks mass as the
        # blob crosses it; with refluxing the composite integral is
        # conserved to round-off.
        assert drift_without > 1e-8
        assert drift_with < 1e-12
        assert stepper.last_reflux_delta > 0.0

    def test_reflux_matches_single_level_when_no_fine(self):
        n = 16
        h = AMRHierarchy(Box((0, 0), (n - 1, n - 1)), ncomp=1, nghost=2,
                         max_levels=1, dx0=1.0 / n, periodic=True)
        solver = AdvectionDiffusionSolver((1.0, 0.0))
        stepper = AMRStepper(h, solver, regrid_interval=0, reflux=True)
        stats = stepper.run(5)
        assert stepper.last_reflux_delta == 0.0
        assert len(stats) == 5

    def test_reflux_requires_flux_form_solver(self):
        class NoFluxSolver:
            nghost = 2

            def initialize(self, h):
                pass

        h = refined_hierarchy()
        with pytest.raises(HierarchyError):
            AMRStepper(h, NoFluxSolver(), regrid_interval=0, reflux=True,
                       initialize=False)

    def test_reflux_keeps_solution_close_to_unrefluxed(self):
        # The correction is a boundary-layer fix, not a rewrite: interior
        # solutions must remain close over a short run.
        h1 = refined_hierarchy()
        h2 = refined_hierarchy()
        mk = lambda: AdvectionDiffusionSolver((1.0, 0.7),
                                              blob_center=(0.35, 0.35),
                                              blob_radius=0.12)
        s1 = AMRStepper(h1, mk(), regrid_interval=0, reflux=False)
        s2 = AMRStepper(h2, mk(), regrid_interval=0, reflux=True)
        s1.run(10)
        s2.run(10)
        d1 = h1.levels[0].data.to_dense(h1.level_domain(0))
        d2 = h2.levels[0].data.to_dense(h2.level_domain(0))
        assert np.abs(d1 - d2).max() < 0.05
