"""Property-based tests for regrid invariants on random tag masks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.amr.box import Box
from repro.amr.hierarchy import AMRHierarchy
from repro.amr.tagging import buffer_tags

N = 32


def make_hierarchy(max_levels=2):
    return AMRHierarchy(
        Box((0, 0), (N - 1, N - 1)), ncomp=1, nghost=2,
        max_levels=max_levels, max_box_size=16, dx0=1.0 / N, periodic=True,
    )


@settings(deadline=None, max_examples=25)
@given(hnp.arrays(dtype=bool, shape=(N, N)))
def test_regrid_covers_buffered_tags_and_stays_disjoint(mask):
    h = make_hierarchy()
    h.regrid({0: mask})
    if not mask.any():
        assert h.finest_level == 0
        return
    assert h.finest_level == 1
    fine_boxes = h.levels[1].layout.boxes
    # Disjointness is enforced by BoxLayout; check coverage of the
    # buffered tags (the hierarchy buffers before clustering).
    buffered = buffer_tags(mask, h.tag_buffer)
    covered = np.zeros((2 * N, 2 * N), dtype=bool)
    domain1 = h.level_domain(1)
    for box in fine_boxes:
        assert domain1.contains_box(box)
        covered[box.slices(origin=domain1)] = True
    coarse_cov = covered[::2, ::2] & covered[1::2, 1::2]
    assert (coarse_cov | ~buffered).all()


@settings(deadline=None, max_examples=15)
@given(hnp.arrays(dtype=bool, shape=(N, N)),
       hnp.arrays(dtype=bool, shape=(N, N)))
def test_repeated_regrids_preserve_level0_data(mask1, mask2):
    h = make_hierarchy()
    rng = np.random.default_rng(0)
    for i in range(len(h.levels[0].layout)):
        view = h.levels[0].data.valid_view(i)
        view[...] = rng.normal(size=view.shape)
    before = h.levels[0].data.to_dense(h.level_domain(0)).copy()
    h.regrid({0: mask1})
    h.regrid({0: mask2})
    after = h.levels[0].data.to_dense(h.level_domain(0))
    np.testing.assert_array_equal(before, after)


@settings(deadline=None, max_examples=10)
@given(st.integers(0, 1000))
def test_three_level_proper_nesting_random_blobs(seed):
    rng = np.random.default_rng(seed)
    h = make_hierarchy(max_levels=3)
    # Random blobby tags at level 0 and level 1.
    mask0 = np.zeros((N, N), dtype=bool)
    for _ in range(rng.integers(1, 4)):
        cx, cy = rng.integers(4, N - 4, size=2)
        r = rng.integers(2, 6)
        ys, xs = np.ogrid[:N, :N]
        mask0 |= (xs - cx) ** 2 + (ys - cy) ** 2 <= r * r
    h.regrid({0: mask0})
    if h.finest_level < 1:
        return
    mask1 = np.zeros((2 * N, 2 * N), dtype=bool)
    cover = h.levels[1].layout.covering_box()
    cx = (cover.lo[0] + cover.hi[0]) // 2
    cy = (cover.lo[1] + cover.hi[1]) // 2
    mask1[max(0, cx - 3):cx + 3, max(0, cy - 3):cy + 3] = True
    h.regrid({0: mask0, 1: mask1})
    if h.finest_level < 2:
        return
    # Every level-2 box, coarsened, must be fully covered by level-1 boxes.
    lvl1 = h.levels[1].layout.boxes
    for box in h.levels[2].layout:
        cbox = box.coarsen(2)
        covered = sum(
            inter.size for b1 in lvl1
            if not (inter := cbox.intersect(b1)).is_empty()
        )
        assert covered == cbox.size
