"""Tests for tagging and Berger-Rigoutsos clustering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.amr.box import Box
from repro.amr.clustering import cluster_tags
from repro.amr.tagging import buffer_tags, tag_gradient, tag_undivided_difference
from repro.errors import GeometryError


class TestTagging:
    def test_step_function_tags_jump(self):
        field = np.zeros(10)
        field[5:] = 1.0
        tags = tag_undivided_difference(field, 0.5)
        assert tags[4] and tags[5]
        assert not tags[0] and not tags[9]

    def test_smooth_field_untagged(self):
        x = np.linspace(0, 1, 50)
        tags = tag_undivided_difference(0.01 * x, 0.1)
        assert not tags.any()

    def test_2d_jump_tagged_along_line(self):
        field = np.zeros((8, 8))
        field[:, 4:] = 1.0
        tags = tag_undivided_difference(field, 0.5)
        assert tags[:, 3].all() and tags[:, 4].all()
        assert not tags[:, 0].any()

    def test_nan_cells_never_tagged(self):
        field = np.zeros((6, 6))
        field[2:, :] = np.nan
        field[0, 3] = 10.0
        tags = tag_undivided_difference(field, 0.5)
        assert not tags[3:, :].any()
        assert tags[0, 3]

    def test_negative_threshold_rejected(self):
        with pytest.raises(GeometryError):
            tag_undivided_difference(np.zeros(4), -1.0)

    def test_gradient_tagging_scales_with_dx(self):
        x = np.linspace(0, 1, 100)
        field = x.copy()  # gradient 1.0 in physical units when dx=1/99... use dx arg
        tags_fine = tag_gradient(field, threshold=0.5, dx=0.01)
        tags_coarse = tag_gradient(field, threshold=0.5, dx=10.0)
        assert tags_fine.all()
        assert not tags_coarse.any()

    def test_gradient_bad_dx(self):
        with pytest.raises(GeometryError):
            tag_gradient(np.zeros(4), 0.1, dx=0)


class TestBufferTags:
    def test_buffer_grows_by_radius(self):
        tags = np.zeros((9, 9), dtype=bool)
        tags[4, 4] = True
        grown = buffer_tags(tags, 2)
        assert grown[2, 4] and grown[4, 2] and grown[6, 4]
        assert not grown[1, 4]
        # Diamond (separable per-step) growth: corner at distance 2+2 untouched
        assert not grown[1, 1]

    def test_buffer_zero_identity(self):
        tags = np.random.default_rng(0).random((5, 5)) > 0.5
        np.testing.assert_array_equal(buffer_tags(tags, 0), tags)

    def test_buffer_negative_rejected(self):
        with pytest.raises(GeometryError):
            buffer_tags(np.zeros((2, 2), dtype=bool), -1)

    def test_buffer_clips_at_array_edge(self):
        tags = np.zeros((4, 4), dtype=bool)
        tags[0, 0] = True
        grown = buffer_tags(tags, 3)
        assert grown.shape == (4, 4)
        assert grown[3, 0] and grown[0, 3]


class TestClusterTags:
    def test_empty_tags_no_boxes(self):
        assert cluster_tags(np.zeros((8, 8), dtype=bool)) == []

    def test_single_cell(self):
        tags = np.zeros((8, 8), dtype=bool)
        tags[3, 5] = True
        boxes = cluster_tags(tags)
        assert boxes == [Box((3, 5), (3, 5))]

    def test_full_block_single_box(self):
        tags = np.zeros((16, 16), dtype=bool)
        tags[4:8, 4:8] = True
        boxes = cluster_tags(tags, fill_ratio=0.9)
        assert boxes == [Box((4, 4), (7, 7))]

    def test_origin_shift(self):
        tags = np.zeros((8, 8), dtype=bool)
        tags[0, 0] = True
        boxes = cluster_tags(tags, origin=(10, 20))
        assert boxes == [Box((10, 20), (10, 20))]

    def test_two_separated_clusters_split(self):
        tags = np.zeros((32, 32), dtype=bool)
        tags[2:6, 2:6] = True
        tags[20:24, 20:24] = True
        boxes = cluster_tags(tags, fill_ratio=0.7)
        assert len(boxes) >= 2
        covered = np.zeros_like(tags)
        for b in boxes:
            covered[b.slices(origin=Box((0, 0), (31, 31)))] = True
        assert (covered >= tags).all()

    def test_max_box_size_respected(self):
        tags = np.ones((64, 64), dtype=bool)
        boxes = cluster_tags(tags, max_box_size=16)
        assert all(max(b.shape) <= 16 for b in boxes)

    def test_bad_params_rejected(self):
        tags = np.zeros((4, 4), dtype=bool)
        with pytest.raises(GeometryError):
            cluster_tags(tags, fill_ratio=0.0)
        with pytest.raises(GeometryError):
            cluster_tags(tags, max_box_size=0)
        with pytest.raises(GeometryError):
            cluster_tags(tags, origin=(0,))

    @settings(deadline=None, max_examples=40)
    @given(
        hnp.arrays(
            dtype=bool,
            shape=st.tuples(st.integers(1, 24), st.integers(1, 24)),
        ),
        st.floats(0.3, 1.0),
        st.integers(2, 16),
    )
    def test_invariants_cover_disjoint_fill(self, tags, fill_ratio, max_box_size):
        boxes = cluster_tags(tags, fill_ratio=fill_ratio, max_box_size=max_box_size)
        if not tags.any():
            assert boxes == []
            return
        shape = tags.shape
        origin = Box((0, 0), (shape[0] - 1, shape[1] - 1))
        covered = np.zeros(shape, dtype=bool)
        for b in boxes:
            slc = b.slices(origin=origin)
            # Disjoint: no double cover.
            assert not covered[slc].any()
            covered[slc] = True
        # Every tag covered.
        assert (covered | ~tags).all()

    @settings(deadline=None, max_examples=30)
    @given(
        hnp.arrays(dtype=bool, shape=st.tuples(st.integers(2, 12), st.integers(2, 12),
                                               st.integers(2, 12)))
    )
    def test_3d_coverage(self, tags):
        boxes = cluster_tags(tags, fill_ratio=0.5, max_box_size=8)
        if not tags.any():
            assert boxes == []
            return
        shape = tags.shape
        origin = Box((0, 0, 0), tuple(s - 1 for s in shape))
        covered = np.zeros(shape, dtype=bool)
        for b in boxes:
            covered[b.slices(origin=origin)] = True
        assert (covered | ~tags).all()
