"""Tests for LevelData: ghost exchange, physical BCs, dense assembly."""

import numpy as np
import pytest

from repro.amr.box import Box
from repro.amr.layout import BoxLayout
from repro.amr.level import LevelData
from repro.errors import GeometryError


def two_box_layout():
    """Two 4x8 boxes side by side covering (0,0)-(7,7)."""
    return BoxLayout([Box((0, 0), (3, 7)), Box((4, 0), (7, 7))])


class TestConstruction:
    def test_array_shapes_include_ghosts(self):
        ld = LevelData(two_box_layout(), ncomp=2, nghost=1)
        assert ld.data[0].shape == (2, 6, 10)

    def test_valid_view_shape(self):
        ld = LevelData(two_box_layout(), ncomp=2, nghost=2)
        assert ld.valid_view(0).shape == (2, 4, 8)

    def test_nbytes_counts_ghosts(self):
        ld = LevelData(two_box_layout(), ncomp=1, nghost=1)
        assert ld.nbytes == 2 * 6 * 10 * 8

    def test_invalid_params_rejected(self):
        layout = two_box_layout()
        with pytest.raises(GeometryError):
            LevelData(layout, ncomp=0)
        with pytest.raises(GeometryError):
            LevelData(layout, nghost=-1)


class TestSetFromFunction:
    def test_coordinates_are_cell_centers(self):
        layout = BoxLayout([Box((0,), (3,))])
        ld = LevelData(layout, nghost=0)
        ld.set_from_function(lambda x: x, dx=0.5)
        np.testing.assert_allclose(ld.valid_view(0)[0], [0.25, 0.75, 1.25, 1.75])

    def test_multi_component(self):
        layout = BoxLayout([Box((0, 0), (1, 1))])
        ld = LevelData(layout, ncomp=2, nghost=0)

        def fn(x, y):
            return np.stack([x, y])

        ld.set_from_function(fn)
        assert ld.valid_view(0)[0, 1, 0] == pytest.approx(1.5)
        assert ld.valid_view(0)[1, 0, 1] == pytest.approx(1.5)

    def test_wrong_shape_raises(self):
        layout = BoxLayout([Box((0, 0), (1, 1))])
        ld = LevelData(layout, ncomp=3, nghost=0)
        with pytest.raises(GeometryError):
            ld.set_from_function(lambda x, y: x)


class TestExchange:
    def test_interior_ghosts_filled_from_neighbor(self):
        ld = LevelData(two_box_layout(), nghost=1)
        ld.valid_view(0)[...] = 1.0
        ld.valid_view(1)[...] = 2.0
        ld.exchange()
        # Box 0's high-x ghost column (inside box 1) must now be 2.0.
        arr0 = ld.data[0]
        np.testing.assert_allclose(arr0[0, -1, 1:-1], 2.0)
        arr1 = ld.data[1]
        np.testing.assert_allclose(arr1[0, 0, 1:-1], 1.0)

    def test_exchange_returns_bytes(self):
        ld = LevelData(two_box_layout(), nghost=1)
        moved = ld.exchange()
        assert moved > 0
        assert moved % 8 == 0

    def test_zero_ghost_exchange_noop(self):
        ld = LevelData(two_box_layout(), nghost=0)
        assert ld.exchange() == 0

    def test_periodic_exchange_wraps(self):
        domain = Box((0, 0), (7, 7))
        ld = LevelData(two_box_layout(), nghost=1)
        ld.valid_view(0)[...] = 1.0
        ld.valid_view(1)[...] = 2.0
        ld.exchange(periodic_domain=domain)
        # Box 0's low-x ghost wraps around to box 1's high-x edge.
        arr0 = ld.data[0]
        np.testing.assert_allclose(arr0[0, 0, 1:-1], 2.0)

    def test_exchange_preserves_interior(self):
        ld = LevelData(two_box_layout(), nghost=2)
        rng = np.random.default_rng(0)
        for i in range(2):
            ld.valid_view(i)[...] = rng.normal(size=ld.valid_view(i).shape)
        before = [ld.valid_view(i).copy() for i in range(2)]
        ld.exchange(periodic_domain=Box((0, 0), (7, 7)))
        for i in range(2):
            np.testing.assert_array_equal(ld.valid_view(i), before[i])

    def test_exchange_consistent_with_dense(self):
        # Ghost values must equal the dense assembly sampled at the same
        # periodic-wrapped coordinates.
        domain = Box((0, 0), (7, 7))
        ld = LevelData(two_box_layout(), nghost=1)
        rng = np.random.default_rng(1)
        for i in range(2):
            ld.valid_view(i)[...] = rng.normal(size=ld.valid_view(i).shape)
        dense = ld.to_dense(domain)
        ld.exchange(periodic_domain=domain)
        for i, box in enumerate(ld.layout):
            grown = box.grow(1)
            arr = ld.data[i]
            for ix in range(grown.shape[0]):
                for iy in range(grown.shape[1]):
                    gx = (grown.lo[0] + ix) % 8
                    gy = (grown.lo[1] + iy) % 8
                    assert arr[0, ix, iy] == pytest.approx(dense[0, gx, gy])


class TestFillPhysical:
    def test_edge_mode_copies_boundary(self):
        layout = BoxLayout([Box((0, 0), (3, 3))])
        ld = LevelData(layout, nghost=1)
        ld.valid_view(0)[...] = np.arange(16, dtype=float).reshape(4, 4)
        ld.fill_physical(Box((0, 0), (3, 3)), mode="edge")
        arr = ld.data[0]
        np.testing.assert_allclose(arr[0, 0, 1:-1], arr[0, 1, 1:-1])
        np.testing.assert_allclose(arr[0, -1, 1:-1], arr[0, -2, 1:-1])

    def test_constant_mode(self):
        layout = BoxLayout([Box((0, 0), (3, 3))])
        ld = LevelData(layout, nghost=1)
        ld.fill(5.0)
        ld.fill_physical(Box((0, 0), (3, 3)), mode="constant", value=-1.0)
        arr = ld.data[0]
        assert (arr[0, 0, :] == -1.0).all()

    def test_interior_face_untouched(self):
        # Box 0's high-x face is interior (bordering box 1), so physical
        # fill must not touch it.
        ld = LevelData(two_box_layout(), nghost=1)
        ld.fill(3.0)
        ld.data[0][0, -1, :] = 7.0
        ld.fill_physical(Box((0, 0), (7, 7)), mode="constant", value=0.0)
        assert (ld.data[0][0, -1, 1:-1] == 7.0).all()

    def test_unknown_mode_rejected(self):
        ld = LevelData(two_box_layout(), nghost=1)
        with pytest.raises(GeometryError):
            ld.fill_physical(Box((0, 0), (7, 7)), mode="bogus")


class TestDataMovement:
    def test_to_dense_assembles_full_level(self):
        ld = LevelData(two_box_layout(), nghost=1)
        ld.valid_view(0)[...] = 1.0
        ld.valid_view(1)[...] = 2.0
        dense = ld.to_dense(Box((0, 0), (7, 7)))
        assert dense.shape == (1, 8, 8)
        np.testing.assert_allclose(dense[0, :4], 1.0)
        np.testing.assert_allclose(dense[0, 4:], 2.0)

    def test_to_dense_uncovered_filled(self):
        layout = BoxLayout([Box((0, 0), (1, 1))])
        ld = LevelData(layout)
        dense = ld.to_dense(Box((0, 0), (3, 3)), fill=np.nan)
        assert np.isnan(dense[0, 3, 3])
        assert not np.isnan(dense[0, 0, 0])

    def test_copy_overlap_from(self):
        old = LevelData(two_box_layout(), nghost=1)
        old.valid_view(0)[...] = 1.0
        old.valid_view(1)[...] = 2.0
        new_layout = BoxLayout([Box((2, 0), (5, 7))])
        new = LevelData(new_layout, nghost=1)
        new.copy_overlap_from(old)
        dense = new.to_dense()
        np.testing.assert_allclose(dense[0, :2], 1.0)
        np.testing.assert_allclose(dense[0, 2:], 2.0)

    def test_copy_overlap_ncomp_mismatch(self):
        a = LevelData(two_box_layout(), ncomp=1)
        b = LevelData(two_box_layout(), ncomp=2)
        with pytest.raises(GeometryError):
            a.copy_overlap_from(b)

    def test_rank_bytes_sums_to_total(self):
        layout = BoxLayout(
            [Box((0, 0), (3, 7)), Box((4, 0), (7, 7))], nranks=2, ranks=[0, 1]
        )
        ld = LevelData(layout, nghost=1)
        rb = ld.rank_bytes()
        assert rb.sum() == ld.nbytes
        assert (rb > 0).all()
