"""Tests for the AMR hierarchy: ghost fill, average-down, regrid."""

import numpy as np
import pytest

from repro.amr.box import Box
from repro.amr.hierarchy import AMRHierarchy
from repro.errors import HierarchyError


def make_hierarchy(**kw):
    defaults = dict(
        domain=Box((0, 0), (31, 31)),
        ncomp=1,
        nghost=2,
        ref_ratio=2,
        max_levels=3,
        max_box_size=16,
        dx0=1.0 / 32,
        periodic=True,
    )
    defaults.update(kw)
    return AMRHierarchy(**defaults)


def central_tags(shape, frac=0.25):
    """A centred square of tags covering ``frac`` of each extent."""
    mask = np.zeros(shape, dtype=bool)
    slc = tuple(slice(int(s * (0.5 - frac / 2)), int(s * (0.5 + frac / 2))) for s in shape)
    mask[slc] = True
    return mask


class TestConstruction:
    def test_base_level_covers_domain(self):
        h = make_hierarchy()
        assert h.finest_level == 0
        assert h.levels[0].layout.total_cells == 32 * 32

    def test_level_domain_refines(self):
        h = make_hierarchy()
        assert h.level_domain(1) == Box((0, 0), (63, 63))
        assert h.dx(1) == pytest.approx(h.dx0 / 2)

    def test_invalid_params(self):
        with pytest.raises(HierarchyError):
            make_hierarchy(max_levels=0)
        with pytest.raises(HierarchyError):
            make_hierarchy(ref_ratio=1)


class TestRegrid:
    def test_regrid_creates_fine_level(self):
        h = make_hierarchy()
        changed = h.regrid({0: central_tags((32, 32))})
        assert changed
        assert h.finest_level == 1
        # Fine level covers at least the refined central tags.
        fine_cells = h.levels[1].layout.total_cells
        assert fine_cells >= (8 * 8) * 4

    def test_regrid_no_tags_no_change(self):
        h = make_hierarchy()
        changed = h.regrid({0: np.zeros((32, 32), dtype=bool)})
        assert not changed
        assert h.finest_level == 0

    def test_regrid_drops_level_when_tags_vanish(self):
        h = make_hierarchy()
        h.regrid({0: central_tags((32, 32))})
        assert h.finest_level == 1
        changed = h.regrid({0: np.zeros((32, 32), dtype=bool)})
        assert changed
        assert h.finest_level == 0

    def test_regrid_wrong_mask_shape_rejected(self):
        h = make_hierarchy()
        with pytest.raises(HierarchyError):
            h.regrid({0: np.zeros((8, 8), dtype=bool)})

    def test_fine_boxes_nested_in_domain(self):
        h = make_hierarchy()
        h.regrid({0: central_tags((32, 32))})
        fine_domain = h.level_domain(1)
        for box in h.levels[1].layout:
            assert fine_domain.contains_box(box)

    def test_three_level_nesting(self):
        h = make_hierarchy(max_levels=3)
        tags0 = central_tags((32, 32), frac=0.5)
        h.regrid({0: tags0})
        tags1 = central_tags((64, 64), frac=0.2)
        h.regrid({0: tags0, 1: tags1})
        assert h.finest_level == 2
        # Proper nesting: every level-2 box, coarsened, inside a level-1 box
        # region (within the union).
        lvl1_union = h.levels[1].layout.boxes
        for box in h.levels[2].layout:
            cbox = box.coarsen(2)
            covered = 0
            for b1 in lvl1_union:
                inter = cbox.intersect(b1)
                if not inter.is_empty():
                    covered += inter.size
            assert covered == cbox.size

    def test_regrid_preserves_data_on_surviving_regions(self):
        h = make_hierarchy()
        tags = central_tags((32, 32), frac=0.4)
        h.regrid({0: tags})
        # Paint recognizable data on the fine level.
        marker = 7.25
        for i in range(len(h.levels[1].layout)):
            h.levels[1].data.valid_view(i)[...] = marker
        # Regrid with the same tags: grids unchanged, data kept.
        h.regrid({0: tags})
        for i in range(len(h.levels[1].layout)):
            np.testing.assert_allclose(h.levels[1].data.valid_view(i), marker)

    def test_new_fine_regions_interpolated_from_coarse(self):
        h = make_hierarchy()
        # Linear profile on the base level.
        h.levels[0].data.set_from_function(lambda x, y: x, dx=h.dx0)
        h.regrid({0: central_tags((32, 32))})
        # Fine data must follow the same linear profile in x.
        spec = h.levels[1]
        dense = spec.data.to_dense()
        cover = spec.layout.covering_box()
        xs = (np.arange(cover.lo[0], cover.hi[0] + 1) + 0.5) * h.dx(1)
        interior = dense[0, 2:-2, 2:-2]
        expected = np.broadcast_to(xs[2:-2, None], interior.shape)
        valid = ~np.isnan(interior)
        np.testing.assert_allclose(interior[valid],
                                   expected[valid], atol=1e-6)


class TestInterlevelData:
    def test_average_down_constant(self):
        h = make_hierarchy()
        h.regrid({0: central_tags((32, 32))})
        h.levels[0].data.fill(1.0)
        for i in range(len(h.levels[1].layout)):
            h.levels[1].data.valid_view(i)[...] = 5.0
        h.average_down()
        dense0 = h.levels[0].data.to_dense(h.level_domain(0))
        # Cells under the fine level are now 5; others stay 1.
        np.testing.assert_allclose(np.unique(dense0), [1.0, 5.0])
        covered = sum(b.size for b in h.levels[1].layout) // 4
        assert (dense0 == 5.0).sum() == covered

    def test_average_down_conserves_integral(self):
        h = make_hierarchy()
        h.regrid({0: central_tags((32, 32))})
        rng = np.random.default_rng(0)
        for i in range(len(h.levels[1].layout)):
            view = h.levels[1].data.valid_view(i)
            view[...] = rng.normal(size=view.shape)
        h.average_down()
        # Integral over covered coarse region equals fine integral / ratio^2.
        fine_sum = sum(
            h.levels[1].data.valid_view(i).sum()
            for i in range(len(h.levels[1].layout))
        )
        coarse_sum = 0.0
        dense0 = h.levels[0].data.to_dense(h.level_domain(0))
        for b in h.levels[1].layout:
            cb = b.coarsen(2)
            coarse_sum += dense0[(slice(None), *cb.slices(origin=h.level_domain(0)))].sum()
        assert coarse_sum == pytest.approx(fine_sum / 4, rel=1e-10)

    def test_fill_ghosts_from_coarse_linear(self):
        h = make_hierarchy()
        h.levels[0].data.set_from_function(lambda x, y: y, dx=h.dx0)
        h.regrid({0: central_tags((32, 32))})
        h.levels[0].data.set_from_function(lambda x, y: y, dx=h.dx0)
        moved = h.fill_ghosts(1)
        assert moved >= 0
        # Ghost cells of fine boxes should match the linear profile.
        spec = h.levels[1]
        for i, box in enumerate(spec.layout):
            grown = box.grow(2)
            arr = spec.data.data[i]
            ys = (np.arange(grown.lo[1], grown.hi[1] + 1) + 0.5) * h.dx(1)
            np.testing.assert_allclose(
                arr[0], np.broadcast_to(ys, arr[0].shape), atol=1e-6
            )

    def test_fill_ghosts_periodic_base(self):
        h = make_hierarchy()
        h.levels[0].data.set_from_function(lambda x, y: np.sin(2 * np.pi * x), dx=h.dx0)
        moved = h.fill_ghosts(0)
        assert moved > 0
        arr = h.levels[0].data.data[0]
        # Low-x ghosts must equal the wrapped high-x interior values.
        box = h.levels[0].layout.boxes[0]
        if box.lo[0] == 0:
            dense = h.levels[0].data.to_dense(h.level_domain(0))
            np.testing.assert_allclose(arr[0, 1, 2:-2], dense[0, -1, box.lo[1]:box.hi[1] + 1],
                                       atol=1e-12)

    def test_total_accounting(self):
        h = make_hierarchy()
        h.regrid({0: central_tags((32, 32))})
        assert h.total_cells() == sum(s.layout.total_cells for s in h.levels)
        assert h.total_bytes() == sum(s.data.nbytes for s in h.levels)
        assert h.rank_bytes().sum() == h.total_bytes()
