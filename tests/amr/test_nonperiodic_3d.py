"""Coverage for non-periodic hierarchies and 3-D advection paths."""

import numpy as np
import pytest

from repro.amr.advection import AdvectionDiffusionSolver
from repro.amr.box import Box
from repro.amr.hierarchy import AMRHierarchy
from repro.amr.stepper import AMRStepper
from repro.errors import HierarchyError


class TestNonPeriodic:
    def make(self, n=32, max_levels=2):
        return AMRHierarchy(
            Box((0, 0), (n - 1, n - 1)), ncomp=1, nghost=2,
            max_levels=max_levels, max_box_size=16, dx0=1.0 / n,
            periodic=False,
        )

    def test_edge_bc_applied_on_fill(self):
        h = self.make(max_levels=1)
        h.levels[0].data.set_from_function(lambda x, y: x, dx=h.dx0)
        h.fill_ghosts(0)
        # Outflow (edge) BC: ghost values replicate the boundary cells.
        for i, box in enumerate(h.levels[0].layout):
            arr = h.levels[0].data.data[i]
            if box.lo[0] == 0:
                np.testing.assert_allclose(arr[0, 1, 2:-2], arr[0, 2, 2:-2])

    def test_blob_advects_out_of_domain(self):
        # With outflow boundaries, mass leaves the domain and total
        # decreases monotonically once the blob hits the edge.
        h = self.make(max_levels=1)
        solver = AdvectionDiffusionSolver((1.0, 0.0), nu=0.0,
                                          blob_center=(0.8, 0.5),
                                          blob_radius=0.1)
        stepper = AMRStepper(h, solver, regrid_interval=0)
        totals = [h.levels[0].data.to_dense(h.level_domain(0)).sum()]
        for _ in range(25):
            stepper.step()
            totals.append(h.levels[0].data.to_dense(h.level_domain(0)).sum())
        assert totals[-1] < 0.7 * totals[0]
        diffs = np.diff(totals)
        assert (diffs <= 1e-9).all()

    def test_refined_nonperiodic_run_stays_finite(self):
        h = self.make(max_levels=2)
        solver = AdvectionDiffusionSolver((1.0, 0.3), nu=0.001,
                                          blob_center=(0.3, 0.5),
                                          blob_radius=0.12, tag_threshold=0.05)
        stepper = AMRStepper(h, solver, regrid_interval=3)
        stepper.run(12)
        dense = h.levels[0].data.to_dense(h.level_domain(0))
        assert np.isfinite(dense).all()

    def test_fine_ghosts_at_domain_edge_edge_extended(self):
        h = self.make(max_levels=2)
        # Refine a patch touching the domain edge.
        mask = np.zeros((32, 32), dtype=bool)
        mask[0:8, 12:20] = True
        h.regrid({0: mask})
        assert h.finest_level == 1
        h.levels[0].data.set_from_function(lambda x, y: y, dx=h.dx0)
        h.levels[1].data.set_from_function(lambda x, y: y, dx=h.dx(1))
        h.fill_ghosts(1)
        for arr in h.levels[1].data.data:
            assert np.isfinite(arr).all()


class TestAdvection3D:
    def test_blob_moves_in_3d(self):
        n = 24
        h = AMRHierarchy(Box((0, 0, 0), (n - 1,) * 3), ncomp=1, nghost=2,
                         max_levels=1, max_box_size=12, dx0=1.0 / n,
                         periodic=True)
        solver = AdvectionDiffusionSolver((1.0, 0.0, 0.0), nu=0.0,
                                          blob_center=(0.3, 0.5, 0.5),
                                          blob_radius=0.12)
        stepper = AMRStepper(h, solver, regrid_interval=0)
        total0 = h.levels[0].data.to_dense(h.level_domain(0)).sum()
        stepper.run(10)
        dense = h.levels[0].data.to_dense(h.level_domain(0))[0]
        assert dense.sum() == pytest.approx(total0, rel=1e-10)
        xs = (np.arange(n) + 0.5) / n
        peak_x = xs[np.argmax(dense.max(axis=(1, 2)))]
        assert peak_x > 0.3 + 0.5 * stepper.time  # moved right

    def test_3d_refined_conservation_with_reflux(self):
        n = 16
        h = AMRHierarchy(Box((0, 0, 0), (n - 1,) * 3), ncomp=1, nghost=2,
                         max_levels=2, max_box_size=8, dx0=1.0 / n,
                         periodic=True)
        mask = np.zeros((n,) * 3, dtype=bool)
        mask[3:9, 3:9, 3:9] = True
        h.regrid({0: mask})
        solver = AdvectionDiffusionSolver((1.0, 0.5, 0.25), nu=0.0,
                                          blob_center=(0.4, 0.4, 0.4),
                                          blob_radius=0.15)
        solver.initialize(h)
        h.average_down()
        stepper = AMRStepper(h, solver, regrid_interval=0, reflux=True,
                             initialize=False)
        before = h.levels[0].data.to_dense(h.level_domain(0)).sum()
        stepper.run(6)
        after = h.levels[0].data.to_dense(h.level_domain(0)).sum()
        assert after == pytest.approx(before, rel=1e-11)


class TestHierarchyErrors:
    def test_average_down_pair_bounds(self):
        h = AMRHierarchy(Box((0, 0), (15, 15)), ncomp=1, nghost=2,
                         max_levels=2, dx0=1 / 16)
        with pytest.raises(HierarchyError):
            h.average_down_pair(0)
        with pytest.raises(HierarchyError):
            h.average_down_pair(1)  # no fine level exists yet
