"""Exact Riemann solver tests + Godunov solver validation against it."""

import numpy as np
import pytest

from repro.amr.box import Box
from repro.amr.godunov import PolytropicGasSolver
from repro.amr.hierarchy import AMRHierarchy
from repro.amr.riemann import RiemannState, exact_riemann, sample_riemann
from repro.amr.stepper import AMRStepper
from repro.errors import GeometryError

SOD_LEFT = RiemannState(rho=1.0, u=0.0, p=1.0)
SOD_RIGHT = RiemannState(rho=0.125, u=0.0, p=0.1)


class TestExactSolver:
    def test_sod_star_state_matches_toro(self):
        # Toro Table 4.2, Test 1: p* = 0.30313, u* = 0.92745.
        p_star, u_star = exact_riemann(SOD_LEFT, SOD_RIGHT, gamma=1.4)
        assert p_star == pytest.approx(0.30313, abs=2e-5)
        assert u_star == pytest.approx(0.92745, abs=2e-5)

    def test_123_problem_star_state(self):
        # Toro Test 2 (double rarefaction): p* = 0.00189, u* = 0.
        left = RiemannState(1.0, -2.0, 0.4)
        right = RiemannState(1.0, 2.0, 0.4)
        p_star, u_star = exact_riemann(left, right)
        assert p_star == pytest.approx(0.00189, abs=5e-5)
        assert u_star == pytest.approx(0.0, abs=1e-10)

    def test_strong_shock_star_state(self):
        # Toro Test 3: p* = 460.894, u* = 19.5975.
        left = RiemannState(1.0, 0.0, 1000.0)
        right = RiemannState(1.0, 0.0, 0.01)
        p_star, u_star = exact_riemann(left, right)
        assert p_star == pytest.approx(460.894, rel=1e-4)
        assert u_star == pytest.approx(19.5975, rel=1e-4)

    def test_identical_states_trivial(self):
        state = RiemannState(1.0, 0.5, 2.0)
        p_star, u_star = exact_riemann(state, state)
        assert p_star == pytest.approx(2.0, rel=1e-10)
        assert u_star == pytest.approx(0.5, abs=1e-10)

    def test_vacuum_detected(self):
        left = RiemannState(1.0, -10.0, 0.01)
        right = RiemannState(1.0, 10.0, 0.01)
        with pytest.raises(GeometryError):
            exact_riemann(left, right)

    def test_invalid_states_rejected(self):
        with pytest.raises(GeometryError):
            RiemannState(rho=-1.0, u=0.0, p=1.0)
        with pytest.raises(GeometryError):
            exact_riemann(SOD_LEFT, SOD_RIGHT, gamma=1.0)

    def test_sampled_solution_structure(self):
        xi = np.linspace(-2.0, 2.0, 801)
        rho, u, p = sample_riemann(SOD_LEFT, SOD_RIGHT, xi)
        # Far field recovers the initial data.
        assert rho[0] == pytest.approx(1.0)
        assert rho[-1] == pytest.approx(0.125)
        assert p[0] == pytest.approx(1.0) and p[-1] == pytest.approx(0.1)
        # The pressure plateau between the waves sits at p*.
        p_star, u_star = exact_riemann(SOD_LEFT, SOD_RIGHT)
        mid = np.abs(xi - u_star) < 0.05
        np.testing.assert_allclose(p[mid], p_star, rtol=1e-6)
        # Density is monotone non-increasing for Sod.
        assert (np.diff(rho) <= 1e-9).all()

    def test_contact_density_jump(self):
        # Across the contact, pressure and velocity are continuous but
        # density jumps between the two star densities.
        p_star, u_star = exact_riemann(SOD_LEFT, SOD_RIGHT)
        rho_l, _, _ = sample_riemann(SOD_LEFT, SOD_RIGHT,
                                     np.array([u_star - 1e-6]))
        rho_r, _, _ = sample_riemann(SOD_LEFT, SOD_RIGHT,
                                     np.array([u_star + 1e-6]))
        assert rho_l[0] == pytest.approx(0.42632, abs=2e-4)
        assert rho_r[0] == pytest.approx(0.26557, abs=2e-4)


class TestGodunovValidation:
    def _run_sod(self, n=256, t_end=0.15):
        domain = Box((0,), (n - 1,))
        h = AMRHierarchy(domain, ncomp=3, nghost=2, max_levels=1,
                         max_box_size=128, dx0=1.0 / n, periodic=False)
        solver = PolytropicGasSolver(gamma=1.4, order=2)
        solver._ndim = 1

        def sod(x):
            left = x < 0.5
            out = np.zeros((3, *x.shape))
            out[0] = np.where(left, 1.0, 0.125)
            out[2] = np.where(left, 1.0, 0.1) / 0.4
            return out

        h.levels[0].data.set_from_function(sod, dx=h.dx0)
        stepper = AMRStepper(h, solver, regrid_interval=0, initialize=False)
        while stepper.time < t_end:
            stepper.step()
        rho = h.levels[0].data.to_dense(h.level_domain(0))[0]
        x = (np.arange(n) + 0.5) / n
        xi = (x - 0.5) / stepper.time
        exact_rho, _, _ = sample_riemann(SOD_LEFT, SOD_RIGHT, xi)
        return rho, exact_rho

    def test_sod_l1_error_small(self):
        rho, exact = self._run_sod(n=256)
        l1 = np.abs(rho - exact).mean()
        assert l1 < 0.01

    def test_sod_converges_with_resolution(self):
        rho_lo, exact_lo = self._run_sod(n=128)
        rho_hi, exact_hi = self._run_sod(n=512)
        err_lo = np.abs(rho_lo - exact_lo).mean()
        err_hi = np.abs(rho_hi - exact_hi).mean()
        assert err_hi < 0.7 * err_lo
