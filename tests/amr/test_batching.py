"""Tests for the batched/chunked solver paths (:mod:`repro.amr.godunov`).

``advance_boxes`` and ``_level_waves`` stack same-shape boxes and split
the work into cache-sized chunks (``_BATCH_CELLS``).  Batching is a pure
performance measure: every assertion here demands *exact* agreement with
the per-box scalar path, for any chunk size.
"""

import numpy as np
import pytest

from repro.amr import godunov
from repro.amr.box import Box
from repro.amr.godunov import PolytropicGasSolver, _batches, _shape_groups
from repro.amr.hierarchy import AMRHierarchy
from repro.amr.stepper import AMRStepper


def gas_hierarchy(n=32, ndim=2, max_levels=1, max_box_size=8, periodic=True):
    domain = Box(tuple(0 for _ in range(ndim)), tuple(n - 1 for _ in range(ndim)))
    return AMRHierarchy(
        domain, ncomp=ndim + 2, nghost=2, max_levels=max_levels,
        max_box_size=max_box_size, dx0=1.0 / n, periodic=periodic,
    )


def blast_arrays(solver, shapes, seed=0):
    """Ghosted per-box conserved-state arrays with smooth random data."""
    rng = np.random.default_rng(seed)
    g = solver.nghost
    arrays = []
    for shape in shapes:
        ndim = len(shape)
        full = tuple(s + 2 * g for s in shape)
        U = np.zeros((ndim + 2, *full))
        U[0] = 1.0 + 0.3 * rng.random(full)  # rho
        for d in range(ndim):
            U[1 + d] = U[0] * 0.2 * (rng.random(full) - 0.5)
        kinetic = 0.5 * np.sum(U[1:-1] ** 2, axis=0) / U[0]
        U[-1] = (1.0 + 0.5 * rng.random(full)) / (solver.gamma - 1.0) + kinetic
        arrays.append(U)
    return arrays


class TestHelpers:
    def test_shape_groups_preserve_order(self):
        arrays = [np.zeros(s) for s in [(4, 4), (8, 4), (4, 4), (8, 4), (2, 2)]]
        assert _shape_groups(arrays) == [[0, 2], [1, 3], [4]]

    def test_batches_split_by_cell_budget(self, monkeypatch):
        monkeypatch.setattr(godunov, "_BATCH_CELLS", 100)
        assert _batches(list(range(7)), cells_per_box=40) == [[0, 1], [2, 3], [4, 5], [6]]
        # A single box larger than the budget still forms a batch of one.
        assert _batches([0, 1], cells_per_box=1000) == [[0], [1]]


class TestAdvanceBoxesEquivalence:
    @pytest.mark.parametrize("ndim", [1, 2, 3])
    def test_matches_per_box_advance_exactly(self, ndim):
        solver = PolytropicGasSolver()
        shapes = [(8,) * ndim] * 5 + [(4,) * ndim] * 3 + [(6,) * ndim]
        batched = blast_arrays(solver, shapes)
        scalar = [arr.copy() for arr in batched]
        solver.advance_boxes(batched, dx=0.05, dt=0.004)
        for arr in scalar:
            solver.advance(arr, dx=0.05, dt=0.004)
        for got, want in zip(batched, scalar):
            assert np.array_equal(got, want)

    def test_chunk_size_invariance(self, monkeypatch):
        solver = PolytropicGasSolver()
        shapes = [(8, 8)] * 9
        reference = blast_arrays(solver, shapes, seed=1)
        solver.advance_boxes(reference, dx=0.05, dt=0.004)
        for batch_cells in (1, 100, 1 << 30):
            monkeypatch.setattr(godunov, "_BATCH_CELLS", batch_cells)
            arrays = blast_arrays(solver, shapes, seed=1)
            solver.advance_boxes(arrays, dx=0.05, dt=0.004)
            for got, want in zip(arrays, reference):
                assert np.array_equal(got, want)


class TestLevelWavesEquivalence:
    def _blast_level(self):
        h = gas_hierarchy(n=32, ndim=2, max_box_size=8)
        solver = PolytropicGasSolver()
        solver.initialize(h)
        return solver, h.levels[0]

    def test_matches_per_box_waves_exactly(self):
        solver, spec = self._blast_level()
        assert len(spec.layout) > 1  # batching must actually engage
        got = solver._level_waves(spec)
        want = []
        for i in range(len(spec.layout)):
            rho, vel, p = solver.primitives(spec.data.valid_view(i))
            c = np.sqrt(solver.gamma * p / rho)
            want.append(sum(float(np.max(np.abs(vel[d]) + c)) for d in range(2)))
        assert got == want

    def test_stable_dt_chunk_size_invariance(self, monkeypatch):
        solver, spec = self._blast_level()
        reference = solver.stable_dt_level(spec, dx=1.0 / 32, ndim=2)
        for batch_cells in (1, 1 << 30):
            monkeypatch.setattr(godunov, "_BATCH_CELLS", batch_cells)
            assert solver.stable_dt_level(spec, dx=1.0 / 32, ndim=2) == reference


class TestExchangePlanCache:
    def test_plan_cached_on_layout(self):
        h = gas_hierarchy(n=32, ndim=2, max_box_size=8)
        data = h.levels[0].data
        domain = h.domain
        plan = data._exchange_plan(domain)
        assert data._exchange_plan(domain) is plan
        # A different periodicity key gets its own plan.
        assert data._exchange_plan(None) is not plan

    def test_exchange_still_fills_ghosts(self):
        h = gas_hierarchy(n=32, ndim=2, max_box_size=8)
        solver = PolytropicGasSolver()
        solver.initialize(h)
        data = h.levels[0].data
        moved_first = data.exchange(periodic_domain=h.domain)
        moved_again = data.exchange(periodic_domain=h.domain)
        assert moved_first > 0
        assert moved_again == moved_first


class TestSteppedRunEquivalence:
    def test_full_step_chunk_size_invariance(self, monkeypatch):
        def run(batch_cells):
            monkeypatch.setattr(godunov, "_BATCH_CELLS", batch_cells)
            h = gas_hierarchy(n=16, ndim=2, max_levels=2, max_box_size=8)
            solver = PolytropicGasSolver(tag_threshold=0.06)
            stepper = AMRStepper(h, solver, regrid_interval=2)
            stepper.run(4)
            dense = h.levels[0].data.to_dense(h.level_domain(0))
            return dense[0].copy()

        baseline = run(1 << 17)
        assert np.array_equal(run(1), baseline)
        assert np.array_equal(run(1 << 30), baseline)
