"""Unit and property tests for Box geometry."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.amr.box import Box
from repro.errors import GeometryError


def boxes(ndim=2, span=20):
    """Hypothesis strategy for non-empty boxes."""
    lo = st.tuples(*(st.integers(-span, span) for _ in range(ndim)))
    extent = st.tuples(*(st.integers(0, span) for _ in range(ndim)))
    return st.builds(
        lambda l, e: Box(l, tuple(a + b for a, b in zip(l, e))), lo, extent
    )


class TestBasics:
    def test_shape_and_size(self):
        b = Box((0, 0), (7, 3))
        assert b.shape == (8, 4)
        assert b.size == 32
        assert b.ndim == 2

    def test_single_cell(self):
        b = Box((5, 5, 5), (5, 5, 5))
        assert b.size == 1

    def test_empty_box(self):
        b = Box((0, 0), (-1, 5))
        assert b.is_empty()
        assert b.size == 0

    def test_mismatched_ranks_rejected(self):
        with pytest.raises(GeometryError):
            Box((0, 0), (1, 1, 1))

    def test_zero_dim_rejected(self):
        with pytest.raises(GeometryError):
            Box((), ())

    def test_contains_point(self):
        b = Box((0, 0), (3, 3))
        assert b.contains_point((0, 0))
        assert b.contains_point((3, 3))
        assert not b.contains_point((4, 0))

    def test_contains_box(self):
        outer = Box((0, 0), (10, 10))
        assert outer.contains_box(Box((2, 2), (5, 5)))
        assert not outer.contains_box(Box((5, 5), (11, 5)))
        assert outer.contains_box(Box((3, 3), (2, 2)))  # empty is contained

    def test_immutability(self):
        b = Box((0, 0), (1, 1))
        with pytest.raises(AttributeError):
            b.lo = (5, 5)


class TestOperations:
    def test_shift(self):
        assert Box((0, 0), (1, 1)).shift((3, -2)) == Box((3, -2), (4, -1))

    def test_grow(self):
        assert Box((2, 2), (5, 5)).grow(2) == Box((0, 0), (7, 7))
        assert Box((0, 0), (7, 7)).grow(-2) == Box((2, 2), (5, 5))

    def test_intersect(self):
        a = Box((0, 0), (5, 5))
        b = Box((3, 3), (8, 8))
        assert a.intersect(b) == Box((3, 3), (5, 5))

    def test_disjoint_intersect_is_empty(self):
        a = Box((0, 0), (2, 2))
        b = Box((5, 5), (7, 7))
        assert a.intersect(b).is_empty()
        assert not a.intersects(b)

    def test_refine_coarsen_shapes(self):
        b = Box((1, 2), (3, 4))
        r = b.refine(2)
        assert r == Box((2, 4), (7, 9))
        assert r.size == b.size * 4
        assert r.coarsen(2) == b

    def test_coarsen_floor_semantics(self):
        assert Box((1,), (2,)).coarsen(2) == Box((0,), (1,))
        assert Box((-1,), (0,)).coarsen(2) == Box((-1,), (0,))

    def test_refine_ratio_one_identity(self):
        b = Box((0, 1), (4, 5))
        assert b.refine(1) == b
        assert b.coarsen(1) == b

    def test_bad_ratio_rejected(self):
        with pytest.raises(GeometryError):
            Box((0,), (1,)).refine(0)
        with pytest.raises(GeometryError):
            Box((0,), (1,)).coarsen(0)


class TestSlices:
    def test_slices_into_own_array(self):
        b = Box((2, 3), (4, 6))
        arr = np.zeros(b.shape)
        arr[b.slices()] = 1.0
        assert arr.all()

    def test_slices_with_origin(self):
        origin = Box((0, 0), (9, 9))
        inner = Box((2, 3), (4, 6))
        arr = np.zeros(origin.shape)
        arr[inner.slices(origin=origin)] = 1.0
        assert arr.sum() == inner.size

    def test_slices_outside_origin_raises(self):
        with pytest.raises(GeometryError):
            Box((5, 5), (12, 12)).slices(origin=Box((0, 0), (9, 9)))

    def test_coordinates_cover_box(self):
        b = Box((0, 0), (2, 1))
        coords = list(b.coordinates())
        assert len(coords) == b.size
        assert (0, 0) in coords and (2, 1) in coords


class TestSplitting:
    def test_split_axis(self):
        b = Box((0, 0), (7, 7))
        low, high = b.split_axis(0, 4)
        assert low == Box((0, 0), (3, 7))
        assert high == Box((4, 0), (7, 7))
        assert low.size + high.size == b.size

    def test_split_at_boundary_rejected(self):
        b = Box((0, 0), (7, 7))
        with pytest.raises(GeometryError):
            b.split_axis(0, 0)
        with pytest.raises(GeometryError):
            b.split_axis(0, 8)

    def test_chop_respects_max_size(self):
        b = Box((0, 0, 0), (63, 31, 15))
        pieces = b.chop(16)
        assert all(max(p.shape) <= 16 for p in pieces)
        assert sum(p.size for p in pieces) == b.size

    def test_chop_noop_when_small(self):
        b = Box((0,), (7,))
        assert b.chop(8) == [b]

    def test_chop_pieces_disjoint(self):
        b = Box((0, 0), (31, 31))
        pieces = b.chop(8)
        for i in range(len(pieces)):
            for j in range(i + 1, len(pieces)):
                assert not pieces[i].intersects(pieces[j])


class TestProperties:
    @given(boxes())
    def test_refine_then_coarsen_roundtrip(self, b):
        assert b.refine(4).coarsen(4) == b

    @given(boxes(), st.integers(1, 4))
    def test_refine_scales_size(self, b, r):
        assert b.refine(r).size == b.size * r ** b.ndim

    @given(boxes(), boxes())
    def test_intersect_commutes(self, a, b):
        assert a.intersect(b) == b.intersect(a)

    @given(boxes(), boxes())
    def test_intersection_contained_in_both(self, a, b):
        inter = a.intersect(b)
        if not inter.is_empty():
            assert a.contains_box(inter)
            assert b.contains_box(inter)

    @given(boxes(), st.integers(1, 12))
    def test_chop_partitions_cells(self, b, max_size):
        pieces = b.chop(max_size)
        assert sum(p.size for p in pieces) == b.size
        assert all(max(p.shape) <= max_size for p in pieces)

    @given(boxes(), st.integers(-3, 3))
    def test_grow_shrink_roundtrip(self, b, r):
        grown = b.grow(r)
        if not grown.is_empty():
            assert grown.grow(-r) == b

    @given(boxes(ndim=3, span=8))
    def test_coordinates_count_matches_size_3d(self, b):
        assert sum(1 for _ in b.coordinates()) == b.size
