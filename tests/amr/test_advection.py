"""Tests for the adaptive advection-diffusion solver."""

import numpy as np
import pytest

from repro.amr.advection import AdvectionDiffusionSolver
from repro.amr.box import Box
from repro.amr.hierarchy import AMRHierarchy
from repro.amr.stepper import AMRStepper
from repro.errors import GeometryError


def uniform_hierarchy(n=32, ndim=2, max_levels=1):
    domain = Box(tuple(0 for _ in range(ndim)), tuple(n - 1 for _ in range(ndim)))
    return AMRHierarchy(
        domain, ncomp=1, nghost=2, max_levels=max_levels,
        max_box_size=16, dx0=1.0 / n, periodic=True,
    )


class TestConfig:
    def test_bad_params_rejected(self):
        with pytest.raises(GeometryError):
            AdvectionDiffusionSolver((1.0, 0.0), nu=-1)
        with pytest.raises(GeometryError):
            AdvectionDiffusionSolver((1.0, 0.0), cfl=0)

    def test_velocity_rank_checked_at_init(self):
        h = uniform_hierarchy(ndim=2)
        solver = AdvectionDiffusionSolver((1.0, 0.0, 0.0))
        with pytest.raises(GeometryError):
            solver.initialize(h)

    def test_dt_unbounded_rejected(self):
        h = uniform_hierarchy()
        solver = AdvectionDiffusionSolver((0.0, 0.0), nu=0.0)
        solver.initialize(h)
        with pytest.raises(GeometryError):
            solver.stable_dt(h)


class TestSingleLevelPhysics:
    def test_conservation_on_periodic_domain(self):
        h = uniform_hierarchy()
        solver = AdvectionDiffusionSolver((1.0, 0.5), nu=0.001)
        stepper = AMRStepper(h, solver, regrid_interval=0)
        total0 = h.levels[0].data.to_dense(h.level_domain(0)).sum()
        stepper.run(20)
        total1 = h.levels[0].data.to_dense(h.level_domain(0)).sum()
        assert total1 == pytest.approx(total0, rel=1e-10)

    def test_blob_moves_with_velocity(self):
        n = 64
        h = uniform_hierarchy(n=n)
        solver = AdvectionDiffusionSolver((1.0, 0.0), nu=0.0, cfl=0.5,
                                          blob_center=(0.25, 0.5), blob_radius=0.08)
        stepper = AMRStepper(h, solver, regrid_interval=0)
        steps = 20
        stats = stepper.run(steps)
        elapsed = stepper.time
        dense = h.levels[0].data.to_dense(h.level_domain(0))[0]
        # Peak location along x should have moved by ~velocity * time.
        xs = (np.arange(n) + 0.5) / n
        peak_x = xs[np.argmax(dense.max(axis=1))]
        expected = 0.25 + 1.0 * elapsed
        assert peak_x == pytest.approx(expected, abs=2.0 / n)
        assert len(stats) == steps

    def test_diffusion_reduces_peak(self):
        h = uniform_hierarchy()
        solver = AdvectionDiffusionSolver((0.0, 0.0), nu=0.01)
        stepper = AMRStepper(h, solver, regrid_interval=0)
        peak0 = h.levels[0].data.to_dense(h.level_domain(0))[0].max()
        stepper.run(10)
        peak1 = h.levels[0].data.to_dense(h.level_domain(0))[0].max()
        assert peak1 < peak0

    def test_max_principle_upwind(self):
        # First-order upwind advection cannot create new extrema.
        h = uniform_hierarchy()
        solver = AdvectionDiffusionSolver((1.0, -0.5), nu=0.0)
        stepper = AMRStepper(h, solver, regrid_interval=0)
        d0 = h.levels[0].data.to_dense(h.level_domain(0))[0]
        lo, hi = d0.min(), d0.max()
        stepper.run(15)
        d1 = h.levels[0].data.to_dense(h.level_domain(0))[0]
        assert d1.min() >= lo - 1e-12
        assert d1.max() <= hi + 1e-12


class TestAdaptive:
    def test_refinement_follows_blob(self):
        h = uniform_hierarchy(n=32, max_levels=2)
        solver = AdvectionDiffusionSolver(
            (1.0, 0.0), nu=0.0, tag_threshold=0.05,
            blob_center=(0.3, 0.5), blob_radius=0.1,
        )
        stepper = AMRStepper(h, solver, regrid_interval=2)
        assert h.finest_level == 1  # initial regrid created refinement
        center0 = _fine_centroid(h)
        stepper.run(16)
        assert h.finest_level == 1
        center1 = _fine_centroid(h)
        # Refined region tracked the blob moving in +x.
        assert center1[0] > center0[0]

    def test_adaptive_matches_unrefined_coarse_solution(self):
        # The refined solution, averaged down, should stay close to a pure
        # coarse run over a short horizon.
        h_amr = uniform_hierarchy(n=32, max_levels=2)
        h_ref = uniform_hierarchy(n=32, max_levels=1)
        make = lambda: AdvectionDiffusionSolver((1.0, 0.0), nu=0.0, tag_threshold=0.05)
        s_amr = AMRStepper(h_amr, make(), regrid_interval=4)
        s_ref = AMRStepper(h_ref, make(), regrid_interval=0)
        # Drive both for the same physical time (same dt: finest level of
        # h_amr halves dt, so run it twice as many steps).
        dt_ref = make().stable_dt(h_ref)
        for _ in range(4):
            s_ref.step()
        while s_amr.time < s_ref.time - 1e-12:
            s_amr.step()
        d_amr = h_amr.levels[0].data.to_dense(h_amr.level_domain(0))[0]
        d_ref = h_ref.levels[0].data.to_dense(h_ref.level_domain(0))[0]
        assert np.abs(d_amr - d_ref).max() < 0.15
        assert np.abs(d_amr - d_ref).mean() < 0.01


def _fine_centroid(h):
    boxes = h.levels[1].layout.boxes
    total = sum(b.size for b in boxes)
    return tuple(
        sum((b.lo[d] + b.hi[d]) / 2 * b.size for b in boxes) / total
        for d in range(2)
    )
