"""Tests for workload trace persistence."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.workload.io import read_trace, write_trace
from repro.workload.synthetic import SyntheticAMRConfig, synthetic_amr_trace


@pytest.fixture()
def trace():
    return synthetic_amr_trace(
        SyntheticAMRConfig(steps=12, nranks=16, base_cells=1e5, seed=4)
    )


class TestTraceRoundtrip:
    def test_exact_roundtrip(self, trace, tmp_path):
        path = tmp_path / "trace.npz"
        write_trace(trace, path)
        back = read_trace(path)
        assert back.name == trace.name
        assert back.ndim == trace.ndim
        assert back.nranks == trace.nranks
        assert len(back) == len(trace)
        for a, b in zip(trace, back):
            assert a.step == b.step
            assert a.cells == b.cells
            assert a.sim_work == b.sim_work
            assert a.analysis_intensity == b.analysis_intensity
            np.testing.assert_array_equal(a.rank_bytes, b.rank_bytes)

    def test_workflow_identical_from_loaded_trace(self, trace, tmp_path):
        from repro.hpc.systems import titan
        from repro.workflow.config import Mode, WorkflowConfig
        from repro.workflow.driver import run_workflow

        path = tmp_path / "trace.npz"
        write_trace(trace, path)
        config = WorkflowConfig(mode=Mode.ADAPTIVE_MIDDLEWARE, sim_cores=256,
                                staging_cores=16, spec=titan(),
                                analysis_cost_per_cell=0.05)
        a = run_workflow(config, trace)
        b = run_workflow(config, read_trace(path))
        assert a.end_to_end_seconds == b.end_to_end_seconds
        assert a.data_moved_bytes == b.data_moved_bytes

    def test_not_a_trace_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, whatever=np.zeros(3))
        with pytest.raises(TraceError):
            read_trace(path)

    def test_invalid_trace_rejected_at_write(self, trace, tmp_path):
        trace.steps[3].step = 99  # break contiguity
        with pytest.raises(TraceError):
            write_trace(trace, tmp_path / "bad.npz")
