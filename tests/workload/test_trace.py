"""Tests for the trace data model, capture, scaling and synthesis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amr.box import Box
from repro.amr.godunov import PolytropicGasSolver
from repro.amr.hierarchy import AMRHierarchy
from repro.amr.stepper import AMRStepper
from repro.errors import TraceError
from repro.workload.capture import capture_trace
from repro.workload.memory import MemoryProfile, memory_profile_from_trace
from repro.workload.scale import scale_trace
from repro.workload.synthetic import SyntheticAMRConfig, synthetic_amr_trace
from repro.workload.trace import StepRecord, WorkloadTrace


def record(step=1, nranks=4, bytes_per_rank=100.0):
    return StepRecord(
        step=step,
        sim_work=1000.0,
        cells=500,
        data_bytes=4000.0,
        memory_bytes=nranks * bytes_per_rank,
        rank_bytes=np.full(nranks, bytes_per_rank),
    )


class TestStepRecord:
    def test_peak_and_imbalance(self):
        r = StepRecord(1, 10.0, 10, 80.0, 300.0, np.array([100.0, 50.0, 150.0]))
        assert r.peak_rank_bytes == 150.0
        assert r.imbalance == pytest.approx(1.5)

    def test_negative_rejected(self):
        with pytest.raises(TraceError):
            StepRecord(1, -1.0, 10, 80.0, 100.0, np.ones(2))

    def test_empty_ranks_rejected(self):
        with pytest.raises(TraceError):
            StepRecord(1, 1.0, 10, 80.0, 100.0, np.array([]))


class TestWorkloadTrace:
    def test_totals(self):
        trace = WorkloadTrace("t", 3, 4, 8.0, [record(1), record(2)])
        assert trace.total_data_bytes == 8000.0
        assert trace.total_sim_work == 2000.0
        assert len(trace) == 2

    def test_rank_count_validated(self):
        with pytest.raises(TraceError):
            WorkloadTrace("t", 3, 8, 8.0, [record(1, nranks=4)])

    def test_contiguity_check(self):
        trace = WorkloadTrace("t", 3, 4, 8.0, [record(1), record(5)])
        with pytest.raises(TraceError):
            trace.validate()

    def test_invalid_config(self):
        with pytest.raises(TraceError):
            WorkloadTrace("t", 5, 4, 8.0)
        with pytest.raises(TraceError):
            WorkloadTrace("t", 3, 0, 8.0)
        with pytest.raises(TraceError):
            WorkloadTrace("t", 3, 4, 0.0)

    def test_peak_memory_series(self):
        trace = WorkloadTrace("t", 3, 4, 8.0, [record(1, bytes_per_rank=10),
                                               record(2, bytes_per_rank=20)])
        np.testing.assert_allclose(trace.peak_memory_series(), [10.0, 20.0])


class TestCapture:
    @pytest.fixture(scope="class")
    def captured(self):
        h = AMRHierarchy(Box((0, 0), (31, 31)), ncomp=4, nghost=2,
                         max_levels=2, nranks=8, max_box_size=16, dx0=1 / 32)
        stepper = AMRStepper(h, PolytropicGasSolver(tag_threshold=0.05),
                             regrid_interval=2)
        return capture_trace(stepper, nsteps=8, name="gas")

    def test_length_and_contiguity(self, captured):
        assert len(captured) == 8
        captured.validate()

    def test_rank_bytes_match_nranks(self, captured):
        assert captured.nranks == 8
        for rec in captured:
            assert rec.rank_bytes.size == 8

    def test_cells_positive_and_dynamic(self, captured):
        cells = [rec.cells for rec in captured]
        assert all(c > 0 for c in cells)
        assert len(set(cells)) > 1  # AMR: sizes change over time

    def test_data_bytes_consistent_with_cells(self, captured):
        for rec in captured:
            assert rec.data_bytes == pytest.approx(rec.cells * 8.0)

    def test_bad_nsteps(self, captured):
        h = AMRHierarchy(Box((0, 0), (15, 15)), ncomp=4, nghost=2, dx0=1 / 16)
        stepper = AMRStepper(h, PolytropicGasSolver(), regrid_interval=0)
        with pytest.raises(TraceError):
            capture_trace(stepper, 0)


class TestScale:
    def _base(self):
        cfg = SyntheticAMRConfig(steps=10, nranks=8, base_cells=1000.0, seed=3)
        return synthetic_amr_trace(cfg)

    def test_rank_count_changes(self):
        scaled = scale_trace(self._base(), nranks=64, seed=1)
        assert scaled.nranks == 64
        for rec in scaled:
            assert rec.rank_bytes.size == 64

    def test_totals_scale_with_cell_factor(self):
        base = self._base()
        scaled = scale_trace(base, nranks=8, cell_factor=4.0)
        assert scaled.total_data_bytes == pytest.approx(4 * base.total_data_bytes)
        assert scaled.total_sim_work == pytest.approx(4 * base.total_sim_work)

    def test_rank_bytes_sum_preserved(self):
        base = self._base()
        scaled = scale_trace(base, nranks=32, cell_factor=2.0, seed=5)
        for b, s in zip(base, scaled):
            assert s.rank_bytes.sum() == pytest.approx(2.0 * b.rank_bytes.sum())

    def test_deterministic(self):
        base = self._base()
        a = scale_trace(base, nranks=16, seed=7)
        b = scale_trace(base, nranks=16, seed=7)
        for ra, rb in zip(a, b):
            np.testing.assert_array_equal(ra.rank_bytes, rb.rank_bytes)

    def test_imbalance_preserved_roughly(self):
        base = self._base()
        scaled = scale_trace(base, nranks=256, seed=2)
        # Scaled imbalance should be in the same regime (heavier tail is
        # expected with more ranks, but not collapse to uniform).
        assert scaled.steps[5].imbalance > 1.2

    def test_invalid_args(self):
        with pytest.raises(TraceError):
            scale_trace(self._base(), nranks=0)
        with pytest.raises(TraceError):
            scale_trace(self._base(), nranks=4, cell_factor=0)


class TestSynthetic:
    def test_deterministic_in_seed(self):
        cfg = SyntheticAMRConfig(steps=20, nranks=16, base_cells=1e5, seed=42)
        a = synthetic_amr_trace(cfg)
        b = synthetic_amr_trace(cfg)
        for ra, rb in zip(a, b):
            assert ra.cells == rb.cells
            np.testing.assert_array_equal(ra.rank_bytes, rb.rank_bytes)

    def test_growth_envelope(self):
        cfg = SyntheticAMRConfig(steps=40, nranks=4, base_cells=1e5,
                                 growth=2.0, burst_sigma=0.01, seed=0)
        trace = synthetic_amr_trace(cfg)
        early = np.mean([r.cells for r in trace.steps[:5]])
        late = np.mean([r.cells for r in trace.steps[-5:]])
        assert late > 2.0 * early

    def test_memory_imbalanced(self):
        cfg = SyntheticAMRConfig(steps=5, nranks=64, base_cells=1e5,
                                 imbalance_sigma=0.5, seed=1)
        trace = synthetic_amr_trace(cfg)
        assert trace.steps[0].imbalance > 1.5

    def test_validation(self):
        with pytest.raises(TraceError):
            SyntheticAMRConfig(steps=0, nranks=4, base_cells=1e5)
        with pytest.raises(TraceError):
            SyntheticAMRConfig(steps=5, nranks=4, base_cells=-1)
        with pytest.raises(TraceError):
            SyntheticAMRConfig(steps=5, nranks=4, base_cells=1e5, regrid_interval=0)

    @settings(deadline=None, max_examples=20)
    @given(st.integers(1, 60), st.integers(1, 32), st.integers(0, 1000))
    def test_records_always_valid(self, steps, nranks, seed):
        cfg = SyntheticAMRConfig(steps=steps, nranks=nranks, base_cells=1e4, seed=seed)
        trace = synthetic_amr_trace(cfg)
        trace.validate()
        for rec in trace:
            assert rec.cells > 0
            assert rec.rank_bytes.sum() == pytest.approx(rec.memory_bytes, rel=1e-9)


class TestMemoryProfile:
    def test_availability(self):
        profile = MemoryProfile(capacity=100.0, sim_usage=np.array([20.0, 120.0]))
        assert profile.available(0) == 80.0
        assert profile.available(1) == 0.0
        np.testing.assert_allclose(profile.availability_series(), [80.0, 0.0])

    def test_validation(self):
        with pytest.raises(TraceError):
            MemoryProfile(capacity=0, sim_usage=np.ones(2))
        with pytest.raises(TraceError):
            MemoryProfile(capacity=1, sim_usage=np.array([-1.0]))
        with pytest.raises(TraceError):
            MemoryProfile(capacity=1, sim_usage=np.array([]))

    def test_from_trace_peak_rank(self):
        cfg = SyntheticAMRConfig(steps=6, nranks=8, base_cells=1e4, seed=0)
        trace = synthetic_amr_trace(cfg)
        profile = memory_profile_from_trace(trace, capacity=1e9)
        np.testing.assert_allclose(profile.sim_usage, trace.peak_memory_series())

    def test_from_trace_fixed_rank_and_scale(self):
        cfg = SyntheticAMRConfig(steps=6, nranks=8, base_cells=1e4, seed=0)
        trace = synthetic_amr_trace(cfg)
        profile = memory_profile_from_trace(trace, capacity=1e9, rank=3,
                                            usage_scale=2.0)
        expected = 2.0 * np.array([r.rank_bytes[3] for r in trace])
        np.testing.assert_allclose(profile.sim_usage, expected)

    def test_from_trace_validation(self):
        cfg = SyntheticAMRConfig(steps=3, nranks=4, base_cells=1e4)
        trace = synthetic_amr_trace(cfg)
        with pytest.raises(TraceError):
            memory_profile_from_trace(trace, capacity=1e9, rank=9)
        with pytest.raises(TraceError):
            memory_profile_from_trace(trace, capacity=1e9, usage_scale=0)
