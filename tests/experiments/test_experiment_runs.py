"""Fast unit runs of the figure experiments at reduced sizes.

The full-size regenerations live in benchmarks/; these exercise the same
code paths with small parameters so the experiment modules stay covered
by ``pytest tests/``.
"""

import numpy as np
import pytest

from repro.experiments import (
    fig1_memory,
    fig5_app_layer,
    fig6_entropy,
    fig9_resource,
)


class TestFig1Small:
    @pytest.fixture(scope="class")
    def result(self):
        return fig1_memory.run_fig1(nsteps=12)

    def test_series_lengths(self, result):
        assert len(result.steps) == 12
        assert len(result.peak) == 12

    def test_ordering_invariant(self, result):
        assert (result.minimum <= result.median + 1e-9).all()
        assert (result.median <= result.p90 + 1e-9).all()
        assert (result.p90 <= result.peak + 1e-9).all()

    def test_render_contains_summary(self, result):
        text = fig1_memory.render(result)
        assert "peak memory growth" in text
        assert "imbalance" in text


class TestFig5Small:
    @pytest.fixture(scope="class")
    def result(self):
        return fig5_app_layer.run_fig5(steps=16)

    def test_factors_from_hinted_sets(self, result):
        assert set(np.unique(result.factors)) <= {1, 2, 4, 8, 16}

    def test_adaptive_consumption_bounded(self, result):
        assert (result.consumption_min_res
                <= result.consumption_adaptive + 1e-9).all()
        assert (result.consumption_adaptive
                <= result.consumption_max_res + 1e-9).all()

    def test_render(self, result):
        assert "Fig. 5" in fig5_app_layer.render(result)


class TestFig6Small:
    @pytest.fixture(scope="class")
    def result(self):
        return fig6_entropy.run_fig6(n=24, nsteps=6)

    def test_entropy_fields(self, result):
        assert result.entropies.min() >= 0.0
        assert result.entropies.max() > result.threshold > result.entropies.min()

    def test_fraction_and_savings_consistent(self, result):
        assert 0.0 <= result.reduced_fraction <= 1.0
        assert result.bytes_saved_fraction <= result.reduced_fraction

    def test_render_has_verdict(self, result):
        text = fig6_entropy.render(result)
        assert "claim check" in text


class TestFig9Small:
    @pytest.fixture(scope="class")
    def result(self):
        return fig9_resource.run_fig9(steps=10)

    def test_static_series_constant(self, result):
        assert (result.static_series == fig9_resource.STAGING_CORES).all()

    def test_adaptive_within_bounds(self, result):
        series = result.adaptive_series
        assert series.min() >= 1
        assert series.max() <= fig9_resource.STAGING_CORES

    def test_utilization_ordering(self, result):
        assert (result.adaptive.utilization_efficiency
                > result.static.utilization_efficiency)

    def test_render(self, result):
        assert "Eq. 12" in fig9_resource.render(result)
