"""Tests for the trigger-policy sweep (fig_triggers)."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import fig_triggers
from repro.workflow.triggers import TRIGGER_POLICIES


class TestGrid:
    def test_grid_is_scenario_major_policy_minor(self):
        grid = fig_triggers.grid()
        assert len(grid) == len(fig_triggers.SCENARIO_NAMES) * len(TRIGGER_POLICIES)
        assert grid[0] == {
            "policy": "fixed-interval", "scenario": "none",
            "steps": fig_triggers.STEPS,
        }
        assert [p["scenario"] for p in grid[: len(TRIGGER_POLICIES)]] == (
            ["none"] * len(TRIGGER_POLICIES)
        )

    def test_every_registered_policy_swept(self):
        assert set(fig_triggers.POLICY_NAMES) == set(TRIGGER_POLICIES)


class TestRunPoint:
    @pytest.fixture(scope="class")
    def rows(self):
        return {
            policy: fig_triggers.run_point(
                {"policy": policy, "scenario": "none", "steps": 6})
            for policy in ("fixed-interval", "entropy-percentile")
        }

    def test_fixed_interval_samples_every_step(self, rows):
        row = rows["fixed-interval"]
        assert row.snapshots == row.fires == 6
        assert row.budget_used == 0
        assert row.monitor_cost == 6 * fig_triggers.SIM_CORES
        assert row.mean_lag_steps == 0.0

    def test_entropy_percentile_spends_bounded_budget(self, rows):
        row = rows["entropy-percentile"]
        assert row.snapshots <= 6
        assert 0 < row.budget_used <= 6 * 82  # s(eps=0.15, delta=0.05)
        assert row.monitor_cost < rows["fixed-interval"].monitor_cost
        assert row.end_to_end_seconds > 0

    def test_merge_orders_rows_and_lookup(self, rows):
        result = fig_triggers.merge(list(rows.values()))
        assert result.rows == tuple(rows.values())
        assert result.row("fixed-interval", "none") is rows["fixed-interval"]
        with pytest.raises(ExperimentError):
            result.row("fixed-interval", "blackout")

    def test_render_has_one_block_per_scenario(self, rows):
        text = fig_triggers.render(fig_triggers.merge(list(rows.values())))
        assert "scenario=none" in text
        assert "entropy-percentile" in text
        assert "+0.0%" in text  # the baseline row's relative column
