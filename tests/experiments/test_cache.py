"""Tests for the memoized experiment cache (:mod:`repro.experiments.cache`).

The cache's contract is *bit-identity*: a hit, a prefix slice, a stepper
extension, a disk round-trip and a ``REPRO_NO_CACHE=1`` bypass must all
yield exactly the output of an uncached run.  These tests exercise each
path with small solver configurations so they stay fast.
"""

import warnings

import numpy as np
import pytest

from repro.experiments import cache as cache_mod
from repro.experiments.cache import (
    ExperimentCache,
    cache_enabled,
    default_cache,
    reset_default_cache,
)
from repro.experiments.common import SCALES, advection_trace
from repro.experiments.fig1_memory import _gas_stepper, captured_gas_trace
from repro.experiments.fig6_entropy import density_field
from repro.observability.metrics import MetricsRegistry
from repro.workload.capture import capture_trace

#: Small, fast solver configuration shared by the trace tests.
SMALL = {"n": 16, "nranks": 4}


def small_stepper():
    return _gas_stepper(**SMALL)


def fresh_trace(nsteps):
    """Uncached ground truth for the small configuration."""
    return capture_trace(small_stepper(), nsteps, name="t")


def assert_traces_identical(a, b):
    assert a.ndim == b.ndim
    assert a.nranks == b.nranks
    assert a.bytes_per_cell == b.bytes_per_cell
    assert len(a.steps) == len(b.steps)
    for ra, rb in zip(a.steps, b.steps):
        assert ra.step == rb.step
        assert ra.sim_work == rb.sim_work
        assert ra.cells == rb.cells
        assert ra.data_bytes == rb.data_bytes
        assert ra.memory_bytes == rb.memory_bytes
        assert ra.analysis_intensity == rb.analysis_intensity
        assert np.array_equal(ra.rank_bytes, rb.rank_bytes)


@pytest.fixture(autouse=True)
def isolated_cache(monkeypatch):
    """Each test gets a clean default cache and no ambient env settings."""
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    reset_default_cache()
    yield
    reset_default_cache()


class TestKeying:
    def test_key_depends_on_kind_and_params(self):
        cache = ExperimentCache()
        base = cache.key("trace", n=16)
        assert cache.key("trace", n=16) == base
        assert cache.key("trace", n=17) != base
        assert cache.key("field", n=16) != base

    def test_cache_enabled_env(self, monkeypatch):
        assert cache_enabled()
        monkeypatch.setenv("REPRO_NO_CACHE", "0")
        assert cache_enabled()
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert not cache_enabled()

    @pytest.mark.parametrize("value", ["true", "yes", "TRUE", " Yes "])
    def test_cache_disabled_by_word_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_NO_CACHE", value)
        assert not cache_enabled()

    @pytest.mark.parametrize("value", ["false", "no", "FALSE", " No "])
    def test_cache_stays_enabled_for_negations(self, monkeypatch, value):
        # Regression: REPRO_NO_CACHE=false used to *disable* the cache
        # (any non-(""/"0") value was treated as truthy).
        monkeypatch.setenv("REPRO_NO_CACHE", value)
        assert cache_enabled()

    def test_unrecognized_value_warns_once_and_keeps_cache(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "maybe")
        monkeypatch.setattr(cache_mod, "_WARNED_NO_CACHE_VALUES", set())
        with pytest.warns(RuntimeWarning, match="REPRO_NO_CACHE"):
            assert cache_enabled()
        # The second lookup with the same value must stay silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert cache_enabled()


class TestValueMemo:
    def test_identity_preserving_hit(self):
        cache = ExperimentCache()
        calls = []
        obj = cache.value("v", {"a": 1}, lambda: calls.append(1) or {"x": 2})
        again = cache.value("v", {"a": 1}, lambda: calls.append(1) or {"x": 2})
        assert again is obj
        assert len(calls) == 1

    def test_counters(self):
        registry = MetricsRegistry()
        cache = ExperimentCache(metrics=registry)
        cache.value("v", {"a": 1}, lambda: 1)
        cache.value("v", {"a": 1}, lambda: 1)
        cache.value("v", {"a": 2}, lambda: 2)
        assert registry.counter("experiments.cache_misses").value == 2
        assert registry.counter("experiments.cache_hits").value == 1

    def test_no_cache_recomputes(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        cache = ExperimentCache()
        calls = []
        cache.value("v", {"a": 1}, lambda: calls.append(1))
        cache.value("v", {"a": 1}, lambda: calls.append(1))
        assert len(calls) == 2

    def test_advection_trace_shares_default_cache(self):
        assert advection_trace(SCALES[0]) is advection_trace(SCALES[0])

    def test_cached_none_is_a_hit(self):
        # Regression: `stored is not None` as the hit test recomputed a
        # legitimately cached None artifact on every call.
        registry = MetricsRegistry()
        cache = ExperimentCache(metrics=registry)
        calls = []
        assert cache.value("v", {"a": 1}, lambda: calls.append(1)) is None
        assert cache.value("v", {"a": 1}, lambda: calls.append(1)) is None
        assert len(calls) == 1
        assert registry.counter("experiments.cache_hits").value == 1

    def test_cached_none_roundtrips_through_disk(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        writer = ExperimentCache()
        assert writer.value("v", {"a": 1}, lambda: None) is None
        registry = MetricsRegistry()
        reader = ExperimentCache(metrics=registry)
        calls = []
        assert reader.value("v", {"a": 1}, lambda: calls.append(1)) is None
        assert not calls
        assert registry.counter("experiments.cache_hits").value == 1

    def test_store_failure_warns_and_counts(self, tmp_path, monkeypatch):
        # Regression: an unwritable REPRO_CACHE_DIR used to fail silently
        # (bare `except OSError: pass`), recomputing artifacts forever.
        # Pointing the dir at a regular file breaks mkdir() even when the
        # suite runs as root (which ignores read-only permission bits).
        not_a_dir = tmp_path / "cache"
        not_a_dir.write_text("in the way")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(not_a_dir))
        monkeypatch.setattr(cache_mod, "_STORE_FAILURE_WARNED", False)
        registry = MetricsRegistry()
        cache = ExperimentCache(metrics=registry)
        with pytest.warns(RuntimeWarning, match="cache store"):
            assert cache.value("v", {"a": 1}, lambda: 41) == 41
        assert registry.counter("experiments.cache_store_failures").value == 1
        # Later failures keep counting but stay quiet.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert cache.value("v", {"a": 2}, lambda: 42) == 42
        assert registry.counter("experiments.cache_store_failures").value == 2


class TestTraceSessions:
    def test_prefix_and_extension_bit_identical(self):
        cache = ExperimentCache()
        t8 = cache.trace("t", SMALL, 8, small_stepper, name="t")
        assert_traces_identical(t8, fresh_trace(8))
        # Longer request: the live stepper advances forward.
        t12 = cache.trace("t", SMALL, 12, small_stepper, name="t")
        assert_traces_identical(t12, fresh_trace(12))
        # Shorter request: served as a slice of the 12-step session.
        t5 = cache.trace("t", SMALL, 5, small_stepper, name="t")
        assert_traces_identical(t5, fresh_trace(5))

    def test_disk_roundtrip_and_prefix(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        writer = ExperimentCache()
        writer.trace("t", SMALL, 10, small_stepper, name="t")
        assert list(tmp_path.glob("*.pkl"))
        # A fresh cache (new process stand-in) serves a shorter request
        # straight from the stored artifact.
        registry = MetricsRegistry()
        reader = ExperimentCache(metrics=registry)
        t6 = reader.trace("t", SMALL, 6, small_stepper, name="t")
        assert_traces_identical(t6, fresh_trace(6))
        assert registry.counter("experiments.cache_hits").value == 1
        # Extending past a disk prefix restarts from scratch (no live
        # stepper to advance) but must still be bit-identical.
        t12 = reader.trace("t", SMALL, 12, small_stepper, name="t")
        assert_traces_identical(t12, fresh_trace(12))

    def test_no_cache_bit_identical(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        cached_off = captured_gas_trace(nsteps=8, **SMALL)
        monkeypatch.delenv("REPRO_NO_CACHE")
        cached_on = captured_gas_trace(nsteps=8, **SMALL)
        assert_traces_identical(cached_off, cached_on)


class TestFieldSessions:
    def test_extension_bit_identical(self):
        f6_fresh = density_field(n=16, nsteps=6, cache=ExperimentCache())
        cache = ExperimentCache()
        f4 = cache_field = density_field(n=16, nsteps=4, cache=cache)
        f6 = density_field(n=16, nsteps=6, cache=cache)
        assert np.array_equal(f6, f6_fresh)
        assert cache_field is f4  # sanity: same object we captured

    def test_hit_returns_private_copy(self):
        cache = ExperimentCache()
        first = density_field(n=16, nsteps=3, cache=cache)
        second = density_field(n=16, nsteps=3, cache=cache)
        assert np.array_equal(first, second)
        assert first is not second
        second[0, 0, 0] = -1.0  # mutating a result must not poison the cache
        third = density_field(n=16, nsteps=3, cache=cache)
        assert np.array_equal(first, third)

    def test_overshoot_rebuilds(self):
        cache = ExperimentCache()
        f5 = density_field(n=16, nsteps=5, cache=cache)
        # Requesting fewer steps than the live stepper has run forces a
        # rebuild from step zero (state cannot be rewound).
        f2 = density_field(n=16, nsteps=2, cache=cache)
        assert np.array_equal(f2, density_field(n=16, nsteps=2, cache=ExperimentCache()))
        assert np.array_equal(f5, density_field(n=16, nsteps=5, cache=cache))

    def test_disk_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        f4 = density_field(n=16, nsteps=4, cache=ExperimentCache())
        registry = MetricsRegistry()
        reader = ExperimentCache(metrics=registry)
        assert np.array_equal(density_field(n=16, nsteps=4, cache=reader), f4)
        assert registry.counter("experiments.cache_hits").value == 1


class TestDefaultCache:
    def test_singleton_and_reset(self):
        cache = default_cache()
        assert default_cache() is cache
        reset_default_cache()
        assert default_cache() is not cache

    def test_code_salt_isolation(self, monkeypatch):
        # Different code revisions must produce different disk keys.
        cache = ExperimentCache()
        base = cache.key("t", n=1)
        monkeypatch.setattr(cache_mod, "_CODE_SALT", "other-revision")
        assert cache.key("t", n=1) != base

    def test_set_code_salt_pins_keys(self, monkeypatch):
        # The sweep runner resolves the salt once in the parent and pins
        # it in every worker -- no git subprocess per worker, and keys
        # match the parent's exactly.
        monkeypatch.setattr(cache_mod, "_CODE_SALT", None)
        cache_mod.set_code_salt("pinned-rev")
        assert cache_mod._code_salt() == "pinned-rev"
        cache = ExperimentCache()
        a = cache.key("t", n=1)
        cache_mod.set_code_salt("other-rev")
        assert cache.key("t", n=1) != a
