"""Tests for the experiment modules (fast paths; full runs live in benchmarks)."""

import numpy as np
import pytest

from repro.core.actions import Placement
from repro.experiments import fig4_timeline
from repro.experiments.common import (
    PAPER,
    SCALES,
    ScaleConfig,
    advection_trace,
    default_hints,
    render_table,
)


class TestScaleConfigs:
    def test_four_scales_match_paper(self):
        assert [s.sim_cores for s in SCALES] == [2048, 4096, 8192, 16384]
        # 16:1 staging ratio everywhere (Section 5.2.2).
        for scale in SCALES:
            assert scale.sim_cores / scale.staging_cores == 16
        # Step totals from Table 2.
        assert [s.steps for s in SCALES] == [27, 42, 49, 41]

    def test_grids_match_paper(self):
        assert SCALES[0].grid == (1024, 1024, 512)
        assert SCALES[3].grid == (2048, 2048, 1024)
        assert SCALES[1].base_cells == 1024**3

    def test_labels(self):
        assert [s.label for s in SCALES] == ["2K", "4K", "8K", "16K"]


class TestPaperConstants:
    def test_table2_totals_consistent(self):
        for case, row in PAPER.table2.items():
            total, *buckets = row
            assert sum(buckets) <= total  # some steps may run in-situ

    def test_reduction_tuples_have_four_scales(self):
        for tup in (
            PAPER.fig7_overhead_cut_vs_insitu,
            PAPER.fig7_overhead_cut_vs_intransit,
            PAPER.fig8_movement_cut,
            PAPER.fig10_overhead_cut_vs_local,
            PAPER.fig11_movement_cut_vs_local,
        ):
            assert len(tup) == 4

    def test_hints_match_fig5_phases(self):
        hints = default_hints()
        assert hints.factors_for_step(1) == (2, 4)
        assert hints.factors_for_step(30) == (2, 4, 8, 16)


class TestAdvectionTrace:
    def test_trace_shape(self):
        scale = SCALES[0]
        trace = advection_trace(scale)
        assert len(trace) == scale.steps
        assert trace.nranks == scale.sim_cores
        trace.validate()

    def test_memoized(self):
        assert advection_trace(SCALES[0]) is advection_trace(SCALES[0])

    def test_workload_fits_titan_memory(self):
        from repro.hpc.systems import titan

        trace = advection_trace(SCALES[0])
        per_core = titan().memory_per_core
        for record in trace:
            assert record.peak_rank_bytes < per_core


class TestRenderTable:
    def test_alignment_and_title(self):
        out = render_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert lines[1] == "="
        assert "a" in lines[2] and "bb" in lines[2]
        assert len(lines) == 6

    def test_empty_rows(self):
        out = render_table(["x"], [])
        assert "x" in out


class TestFig4:
    def test_scripted_trace_shape(self):
        trace = fig4_timeline.scripted_trace()
        assert len(trace) == fig4_timeline.STEPS
        bursts = [r for r in trace if r.analysis_intensity > 1]
        assert [r.step for r in bursts] == list(fig4_timeline.BURST_STEPS)

    def test_run_reproduces_scenario(self):
        outcome = fig4_timeline.run_fig4()
        placements = [m.placement for m in outcome.result.steps]
        assert placements[0] is Placement.IN_TRANSIT
        assert Placement.IN_SITU in placements
        # Reasons were recorded for sampled decisions.
        assert outcome.reasons
        text = fig4_timeline.render(outcome)
        assert "PASS" in text


class TestFig9TraceCalibration:
    def test_polytropic_trace_growth(self):
        from repro.experiments.fig9_resource import polytropic_trace

        trace = polytropic_trace(steps=20)
        cells = np.array([r.cells for r in trace])
        assert cells[-5:].mean() > 1.5 * cells[:5].mean()
