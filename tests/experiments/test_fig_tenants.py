"""Tests for the multi-tenant contention sweep (fig_tenants)."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import fig_tenants
from repro.service import ADMISSION_POLICIES


class TestGrid:
    def test_grid_is_policy_major_count_minor(self):
        grid = fig_tenants.grid()
        assert len(grid) == (
            len(fig_tenants.POLICY_NAMES) * len(fig_tenants.TENANT_COUNTS)
        )
        assert grid[0] == {
            "policy": "fifo", "tenants": 1, "steps": fig_tenants.STEPS,
        }
        head = grid[: len(fig_tenants.TENANT_COUNTS)]
        assert [p["policy"] for p in head] == (
            ["fifo"] * len(fig_tenants.TENANT_COUNTS)
        )

    def test_every_admission_policy_swept(self):
        assert set(fig_tenants.POLICY_NAMES) == set(ADMISSION_POLICIES)


class TestRunPoint:
    @pytest.fixture(scope="class")
    def rows(self):
        return {
            count: fig_tenants.run_point(
                {"policy": "fifo", "tenants": count, "steps": 6}
            )
            for count in (1, 2)
        }

    def test_solo_point_is_uncontended(self, rows):
        solo = rows[1]
        assert solo.tenants == 1
        assert solo.mean_tts == solo.max_tts == pytest.approx(solo.makespan)
        assert solo.mean_queue_wait == 0.0
        assert solo.fairness_index == 1.0
        assert solo.starvations == 0

    def test_contention_degrades_time_to_solution(self, rows):
        # The ISSUE 10 acceptance criterion: sharing the machine costs
        # measurable time-to-solution against the solo baseline.
        assert rows[2].mean_tts > rows[1].mean_tts
        assert rows[2].makespan > rows[1].makespan

    def test_merge_orders_rows_and_lookup(self, rows):
        result = fig_tenants.merge(list(rows.values()))
        assert result.rows == tuple(rows.values())
        assert result.row("fifo", 1) is rows[1]
        with pytest.raises(ExperimentError):
            result.row("fifo", 99)

    def test_render_shows_degradation_column(self, rows):
        text = fig_tenants.render(fig_tenants.merge(list(rows.values())))
        assert "Multi-tenant contention" in text
        assert "+0%" in text  # the solo baseline row
        assert "fifo" in text

    def test_render_without_solo_point_falls_back(self, rows):
        # A CLI-filtered sweep (--tenants 2) has no solo baseline: the
        # row becomes its own reference instead of raising.
        text = fig_tenants.render(fig_tenants.merge([rows[2]]))
        assert "+0%" in text
