"""Tests for the parallel sweep runner (:mod:`repro.experiments.parallel`).

Three contracts matter:

- **Determinism.**  ``run_all(jobs=N)`` must render byte-identical text
  to ``run_all(jobs=1)`` -- results merge in grid order, never in
  completion order.
- **Cache safety.**  N processes hammering one ``REPRO_CACHE_DIR`` must
  produce exactly one artifact per key (no torn files, no duplicate
  computes once the first store lands) and leave no temp files behind.
- **Observability.**  Lock contention increments
  ``experiments.cache_lock_waits``, worker metric dumps fold into the
  parent registry, and one ``sweep.point`` event fires per grid point.
"""

import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.errors import ExperimentError
from repro.experiments import cache as cache_mod
from repro.experiments.cache import ExperimentCache, reset_default_cache
from repro.experiments.parallel import (
    SWEEPS,
    expand_grid,
    run_all,
    sweep_names,
)
from repro.observability.metrics import MetricsRegistry, merge_worker_metrics
from repro.observability.tracer import Tracer

#: Small grid overrides so sweep tests stay fast (runner overhead, not
#: solver cost, is under test).
SMALL_GRIDS = {
    "fig6": [{"n": 16, "nsteps": 4}],
    "fig9": [{"role": "static", "steps": 8}, {"role": "adaptive", "steps": 8}],
}


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Each test gets a private disk cache and a clean default cache."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    reset_default_cache()
    yield
    reset_default_cache()


class TestGrid:
    def test_sweeps_cover_every_cli_experiment(self):
        from repro.__main__ import EXPERIMENTS

        assert sweep_names() == list(EXPERIMENTS)

    def test_every_spec_has_a_nonempty_grid(self):
        for name, spec in SWEEPS.items():
            grid = spec.grid()
            assert grid, name
            assert all(isinstance(point, dict) for point in grid)

    def test_expand_grid_orders_and_indexes(self):
        tasks = expand_grid(["fig6", "fig9"], SMALL_GRIDS)
        assert tasks == [
            ("fig6", 0, {"n": 16, "nsteps": 4}),
            ("fig9", 0, {"role": "static", "steps": 8}),
            ("fig9", 1, {"role": "adaptive", "steps": 8}),
        ]

    def test_expand_grid_rejects_unknown_experiment(self):
        with pytest.raises(ExperimentError, match="fig99"):
            expand_grid(["fig99"])

    def test_run_all_rejects_bad_jobs_and_names(self):
        with pytest.raises(ExperimentError, match="jobs"):
            run_all(["fig6"], jobs=0)
        with pytest.raises(ExperimentError, match="nope"):
            run_all(["nope"])


class TestDeterminism:
    def test_parallel_output_is_byte_identical_to_serial(self):
        serial = run_all(["fig6", "fig9"], jobs=1, grids=SMALL_GRIDS)
        parallel = run_all(["fig6", "fig9"], jobs=4, grids=SMALL_GRIDS)
        assert [o.name for o in serial] == [o.name for o in parallel]
        for a, b in zip(serial, parallel):
            assert a.text == b.text
            assert a.points == b.points
        assert all(o.jobs == 1 for o in serial)
        assert all(o.jobs == 4 for o in parallel)

    def test_selection_reports_in_sweep_order(self):
        # Input order must not leak into output order.
        outcomes = run_all(["fig9", "fig6"], jobs=1, grids=SMALL_GRIDS)
        assert [o.name for o in outcomes] == ["fig6", "fig9"]

    def test_sweep_point_events_and_metrics(self):
        tracer = Tracer()
        registry = MetricsRegistry()
        outcomes = run_all(["fig9"], jobs=2, metrics=registry, tracer=tracer,
                           grids=SMALL_GRIDS)
        assert outcomes[0].points == 2
        points = [e for e in tracer.events() if e.kind == "sweep.point"]
        assert [e.fields["index"] for e in points] == [0, 1]
        assert all(e.fields["experiment"] == "fig9" for e in points)
        assert all(e.fields["seconds"] >= 0 for e in points)


# -- cross-process hammer ------------------------------------------------------

#: Observable side effect of one compute: a pid-stamped sentinel file.
_SENTINEL_DIR_ENV = "REPRO_TEST_SENTINEL_DIR"


def _hammer_compute():
    sentinel_dir = os.environ[_SENTINEL_DIR_ENV]
    with open(os.path.join(sentinel_dir, f"compute-{os.getpid()}"), "w") as fh:
        fh.write(str(os.getpid()))
    time.sleep(0.05)  # widen the stampede window
    return {"answer": 42}


def _hammer_worker(task):
    cache_dir, sentinel_dir = task
    os.environ["REPRO_CACHE_DIR"] = cache_dir
    os.environ[_SENTINEL_DIR_ENV] = sentinel_dir
    cache_mod.set_code_salt("hammer-salt")
    cache = ExperimentCache()
    return cache.value("hammer", {"x": 1}, _hammer_compute)


class TestConcurrentCache:
    def test_hammer_one_cache_dir(self, tmp_path):
        """N processes, one key: one artifact, no torn or temp files."""
        cache_dir = tmp_path / "shared"
        sentinel_dir = tmp_path / "sentinels"
        cache_dir.mkdir()
        sentinel_dir.mkdir()
        tasks = [(str(cache_dir), str(sentinel_dir))] * 8
        with ProcessPoolExecutor(max_workers=4) as pool:
            results = list(pool.map(_hammer_worker, tasks))
        assert results == [{"answer": 42}] * 8
        artifacts = list(cache_dir.glob("*.pkl"))
        assert len(artifacts) == 1
        assert not list(cache_dir.glob("*.tmp*"))
        # The per-key lock turns the stampede into one compute: only the
        # first lock holder runs _hammer_compute; everyone else adopts
        # its stored artifact.
        assert len(list(sentinel_dir.iterdir())) == 1

    def test_lock_wait_metric_increments(self, tmp_path):
        """A blocked acquisition counts experiments.cache_lock_waits."""
        cache_dir = tmp_path / "locks"
        registry = MetricsRegistry()
        cache = ExperimentCache(cache_dir=cache_dir, metrics=registry)
        key = cache.key("contended", x=1)
        waits = registry.counter("experiments.cache_lock_waits")
        results = []
        with cache._locked(cache_dir, key):
            worker = threading.Thread(
                target=lambda: results.append(
                    cache.value("contended", {"x": 1}, lambda: 7)
                )
            )
            worker.start()
            deadline = time.monotonic() + 10.0
            while waits.value < 1 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert waits.value >= 1  # registered the wait while we hold it
        worker.join(timeout=10.0)
        assert not worker.is_alive()
        assert results == [7]

    def test_worker_init_pins_salt_and_cache_dir(self, tmp_path, monkeypatch):
        from repro.experiments.parallel import _worker_init

        monkeypatch.setattr(cache_mod, "_CODE_SALT", None)
        _worker_init("pinned", str(tmp_path / "workers"))
        assert cache_mod._code_salt() == "pinned"
        assert os.environ["REPRO_CACHE_DIR"] == str(tmp_path / "workers")


class TestMetricsMerge:
    def test_counters_sum_and_gauges_take_last(self):
        worker_a = MetricsRegistry()
        worker_a.counter("experiments.cache_hits").inc(3)
        worker_a.gauge("staging.memory_used").set(10.0)
        worker_b = MetricsRegistry()
        worker_b.counter("experiments.cache_hits").inc(2)
        worker_b.gauge("staging.memory_used").set(4.0)
        parent = MetricsRegistry()
        merge_worker_metrics(parent, [worker_a.dump(), worker_b.dump()])
        assert parent.counter("experiments.cache_hits").value == 5
        assert parent.gauge("staging.memory_used").value == 4.0

    def test_timers_combine_tallies(self):
        worker_a = MetricsRegistry()
        worker_a.timer("staging.service_seconds").observe(2.0)
        worker_b = MetricsRegistry()
        worker_b.timer("staging.service_seconds").observe(4.0)
        worker_b.timer("staging.service_seconds").observe(4.0)
        parent = MetricsRegistry()
        merge_worker_metrics(parent, [worker_a.dump(), worker_b.dump()])
        timer = parent.timer("staging.service_seconds")
        assert timer.count == 3
        assert timer.total == 10.0
        # Count-weighted blend of the per-worker EMAs.
        assert timer.value == pytest.approx((1 * 2.0 + 2 * 4.0) / 3)

    def test_unknown_kind_rejected(self):
        from repro.errors import ObservabilityError

        with pytest.raises(ObservabilityError, match="unknown kind"):
            merge_worker_metrics(
                MetricsRegistry(), [{"m": {"kind": "histogram", "value": 1}}]
            )

    def test_dump_roundtrips_through_pickle(self):
        import pickle

        registry = MetricsRegistry()
        registry.counter("experiments.cache_misses").inc()
        registry.timer("staging.service_seconds").observe(1.5)
        dump = pickle.loads(pickle.dumps(registry.dump()))
        parent = MetricsRegistry()
        merge_worker_metrics(parent, [dump])
        assert parent.counter("experiments.cache_misses").value == 1
        assert parent.timer("staging.service_seconds").count == 1
