"""Unit tests for unit helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.units import (
    GiB,
    KiB,
    MiB,
    format_bytes,
    format_seconds,
    parse_bytes,
)


class TestFormatBytes:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (0, "0 B"),
            (512, "512 B"),
            (1 * KiB, "1.00 KiB"),
            (1536, "1.50 KiB"),
            (3 * MiB, "3.00 MiB"),
            (2.5 * GiB, "2.50 GiB"),
            (-1 * MiB, "-1.00 MiB"),
        ],
    )
    def test_examples(self, value, expected):
        assert format_bytes(value) == expected


class TestParseBytes:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("512 MiB", 512 * MiB),
            ("2GiB", 2 * GiB),
            ("1.5 kb", 1500),
            ("100", 100.0),
            ("0 B", 0.0),
        ],
    )
    def test_examples(self, text, expected):
        assert parse_bytes(text) == pytest.approx(expected)

    @pytest.mark.parametrize("bad", ["", "MiB", "12 parsecs", "x GiB"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            parse_bytes(bad)

    @given(st.floats(min_value=0, max_value=1e15, allow_nan=False))
    def test_roundtrip_via_binary_suffix(self, n):
        # format -> parse must recover the value within rendering precision.
        text = format_bytes(n)
        recovered = parse_bytes(text)
        assert recovered == pytest.approx(n, rel=5e-3, abs=1.0)


class TestFormatSeconds:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (7200, "2.00 h"),
            (90, "1.50 min"),
            (2.5, "2.50 s"),
            (0.25, "250.00 ms"),
            (2e-5, "20.00 us"),
            (-90, "-1.50 min"),
        ],
    )
    def test_examples(self, value, expected):
        assert format_seconds(value) == expected
