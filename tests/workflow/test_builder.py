"""Tests for the WorkflowBuilder programming model."""

import pytest

from repro.core.actions import Placement
from repro.core.mechanisms import Layer
from repro.core.preferences import Objective
from repro.errors import WorkflowError
from repro.hpc.systems import intrepid, titan
from repro.workflow.builder import WorkflowBuilder
from repro.workflow.config import Mode
from repro.workload.synthetic import SyntheticAMRConfig, synthetic_amr_trace


def trace(steps=8):
    return synthetic_amr_trace(
        SyntheticAMRConfig(steps=steps, nranks=64, base_cells=2e7,
                           sim_cost_per_cell=1.0, seed=0)
    )


class TestBuild:
    def test_minimal_build(self):
        config, t = (
            WorkflowBuilder()
            .on(titan(), sim_cores=1024)
            .workload(trace())
            .adapt("middleware")
            .build()
        )
        assert config.mode is Mode.ADAPTIVE_MIDDLEWARE
        assert config.sim_cores == 1024
        assert config.staging_cores == 64  # default 16:1
        assert len(t) == 8

    def test_staging_ratio(self):
        config, _ = (
            WorkflowBuilder()
            .on(titan(), sim_cores=1024, staging_ratio=8)
            .workload(trace())
            .adapt("global")
            .build()
        )
        assert config.staging_cores == 128

    def test_explicit_staging_cores(self):
        config, _ = (
            WorkflowBuilder()
            .on(intrepid(), sim_cores=4096, staging_cores=256)
            .workload(trace())
            .adapt("resource")
            .build()
        )
        assert config.staging_cores == 256
        assert config.spec.name == "intrepid"

    def test_both_staging_args_rejected(self):
        with pytest.raises(WorkflowError):
            WorkflowBuilder().on(titan(), sim_cores=64, staging_cores=4,
                                 staging_ratio=16)

    def test_underspecified_lists_whats_missing(self):
        with pytest.raises(WorkflowError, match=r"\.on\(.*\.adapt\("):
            WorkflowBuilder().build()

    def test_unknown_mode_and_objective_rejected(self):
        builder = WorkflowBuilder().on(titan(), sim_cores=64)
        with pytest.raises(WorkflowError, match="unknown adaptation mode"):
            builder.adapt("telepathy")
        with pytest.raises(WorkflowError, match="unknown objective"):
            builder.objective("win")

    def test_synthetic_workload_inherits_rank_count(self):
        _, t = (
            WorkflowBuilder()
            .on(titan(), sim_cores=512)
            .synthetic_workload(steps=5, base_cells=1e6, seed=3)
            .adapt("static_insitu")
            .build()
        )
        assert t.nranks == 512

    def test_synthetic_before_on_rejected(self):
        with pytest.raises(WorkflowError):
            WorkflowBuilder().synthetic_workload(steps=5, base_cells=1e6)

    def test_hints_and_objective_propagate(self):
        config, _ = (
            WorkflowBuilder()
            .on(titan(), sim_cores=256)
            .workload(trace())
            .objective(Objective.MINIMIZE_DATA_MOVEMENT)
            .downsample_hints((1, (2, 4)), (5, (2, 4, 8)))
            .monitor_every(2)
            .adapt("global")
            .hybrid()
            .estimator_bias(2.0)
            .build()
        )
        assert config.preferences.objective is Objective.MINIMIZE_DATA_MOVEMENT
        assert config.hints.factors_for_step(6) == (2, 4, 8)
        assert config.hints.monitor_interval == 2
        assert config.hybrid_placement
        assert config.estimator_bias == 2.0


class TestRun:
    def test_end_to_end_run(self):
        result = (
            WorkflowBuilder()
            .on(titan(), sim_cores=1024)
            .workload(trace(steps=10))
            .analysis(cost_per_cell=0.035)
            .adapt("middleware")
            .run()
        )
        assert result.end_to_end_seconds > 0
        assert all(m.analysis_done_at is not None for m in result.steps)

    def test_objective_changes_behaviour(self):
        def run(objective):
            return (
                WorkflowBuilder()
                .on(titan(), sim_cores=1024)
                .workload(trace(steps=10))
                .analysis(cost_per_cell=0.035)
                .objective(objective)
                .adapt("global")
                .run()
            )

        tts = run("minimize_time_to_solution")
        movement = run("minimize_data_movement")
        assert movement.data_moved_bytes <= tts.data_moved_bytes
        assert movement.placement_counts()[Placement.IN_SITU] >= (
            tts.placement_counts()[Placement.IN_SITU]
        )
