"""Tests for the post-processing baseline and the energy model."""

import pytest

from repro.core.actions import Placement
from repro.hpc.systems import titan
from repro.workflow.config import Mode, WorkflowConfig
from repro.workflow.driver import run_workflow
from repro.workload.synthetic import SyntheticAMRConfig, synthetic_amr_trace


def trace(steps=12, seed=0):
    return synthetic_amr_trace(
        SyntheticAMRConfig(steps=steps, nranks=64, base_cells=2e7,
                           sim_cost_per_cell=1.0, growth=1.5,
                           analysis_growth_exponent=0.3, seed=seed)
    )


def config(mode, **kw):
    return WorkflowConfig(mode=mode, sim_cores=1024, staging_cores=64,
                          spec=titan(), analysis_cost_per_cell=0.035, **kw)


class TestPostProcessing:
    def test_all_steps_marked_post_process(self):
        result = run_workflow(config(Mode.POST_PROCESSING), trace())
        counts = result.placement_counts()
        assert counts[Placement.POST_PROCESS] == 12
        assert counts[Placement.IN_SITU] == 0

    def test_pfs_traffic_round_trips_all_data(self):
        t = trace()
        result = run_workflow(config(Mode.POST_PROCESSING), t)
        assert result.pfs_bytes_written == pytest.approx(t.total_data_bytes)
        assert result.pfs_bytes_read == pytest.approx(t.total_data_bytes)

    def test_analyses_complete_after_simulation(self):
        result = run_workflow(config(Mode.POST_PROCESSING), trace())
        sim_end = sum(m.sim_seconds + m.block_seconds for m in result.steps)
        for metric in result.steps:
            assert metric.analysis_done_at >= sim_end - 1e-9

    def test_writes_block_the_simulation(self):
        result = run_workflow(config(Mode.POST_PROCESSING), trace())
        assert all(m.block_seconds > 0 for m in result.steps)

    def test_simulation_time_analysis_beats_post_processing(self):
        """The paper's opening claim, now runnable."""
        t = trace(steps=15)
        post = run_workflow(config(Mode.POST_PROCESSING), t)
        for mode in (Mode.STATIC_INSITU, Mode.ADAPTIVE_MIDDLEWARE):
            simtime = run_workflow(config(mode), t)
            assert simtime.end_to_end_seconds < post.end_to_end_seconds
            assert simtime.overhead_seconds < post.overhead_seconds

    def test_no_staging_ingest(self):
        result = run_workflow(config(Mode.POST_PROCESSING), trace())
        assert result.data_moved_bytes == 0.0


class TestEnergyModel:
    def test_breakdown_sums_to_total(self):
        result = run_workflow(config(Mode.ADAPTIVE_MIDDLEWARE), trace())
        assert sum(result.energy_breakdown.values()) == pytest.approx(
            result.energy_joules
        )

    def test_all_components_nonnegative(self):
        for mode in Mode:
            result = run_workflow(config(mode), trace(steps=8))
            assert result.energy_joules > 0
            assert all(v >= 0 for v in result.energy_breakdown.values())

    def test_sim_compute_dominates(self):
        # 1024 simulation cores against 64 staging cores: the simulation's
        # compute draw dominates any configuration.
        result = run_workflow(config(Mode.STATIC_INTRANSIT), trace())
        assert (result.energy_breakdown["sim_compute"]
                > 0.5 * result.energy_joules)

    def test_post_processing_costs_more_energy(self):
        t = trace(steps=15)
        post = run_workflow(config(Mode.POST_PROCESSING), t)
        adaptive = run_workflow(config(Mode.ADAPTIVE_MIDDLEWARE), t)
        assert post.energy_joules > adaptive.energy_joules

    def test_data_movement_energy_tracks_bytes(self):
        t = trace()
        intransit = run_workflow(config(Mode.STATIC_INTRANSIT), t)
        insitu = run_workflow(config(Mode.STATIC_INSITU), t)
        assert (intransit.energy_breakdown["data_movement"]
                > insitu.energy_breakdown["data_movement"])

    def test_energy_deterministic(self):
        a = run_workflow(config(Mode.GLOBAL), trace())
        b = run_workflow(config(Mode.GLOBAL), trace())
        assert a.energy_joules == b.energy_joules
