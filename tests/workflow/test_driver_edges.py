"""Edge-path coverage for the workflow driver."""

import numpy as np
import pytest

from repro.core.actions import Placement
from repro.hpc.systems import titan
from repro.workflow.config import Mode, WorkflowConfig
from repro.workflow.driver import CoupledWorkflow, run_workflow
from repro.workload.synthetic import SyntheticAMRConfig, synthetic_amr_trace
from repro.workload.trace import StepRecord, WorkloadTrace


def trace(steps=8, nranks=64):
    return synthetic_amr_trace(
        SyntheticAMRConfig(steps=steps, nranks=nranks, base_cells=2e7,
                           sim_cost_per_cell=1.0, seed=0)
    )


class TestRankScaling:
    def test_trace_ranks_fewer_than_cores(self):
        """A rank stands for a core group: per-rank memory capacity scales."""
        t = trace(nranks=64)
        config = WorkflowConfig(mode=Mode.ADAPTIVE_MIDDLEWARE, sim_cores=1024,
                                staging_cores=64, spec=titan(),
                                analysis_cost_per_cell=0.035)
        wf = CoupledWorkflow(config, t)
        assert wf.rank_memory_capacity == pytest.approx(
            titan().memory_per_core * 1024 / 64
        )
        result = wf.run()
        assert all(m.analysis_done_at is not None for m in result.steps)

    def test_trace_ranks_equal_cores(self):
        t = trace(nranks=128)
        config = WorkflowConfig(mode=Mode.STATIC_INSITU, sim_cores=128,
                                staging_cores=8, spec=titan())
        wf = CoupledWorkflow(config, t)
        assert wf.rank_memory_capacity == pytest.approx(titan().memory_per_core)


class TestMemoryPressurePlacement:
    def test_insitu_infeasible_forces_intransit(self):
        """When the peak rank has no analysis headroom, case 1 of the
        middleware policy must ship the step even if staging is busy."""
        nranks = 8
        cells = int(4e7)  # 320 MB output -> 40 MB on the peak rank
        # Per-rank simulation state nearly fills the rank's memory,
        # leaving ~10 MB of headroom -- less than the analysis needs.
        capacity = titan().memory_per_core  # 2 GiB
        records = []
        for step in range(1, 7):
            rank_bytes = np.full(nranks, capacity * 0.995)
            records.append(StepRecord(
                step=step,
                sim_work=cells * 8.0,
                cells=cells,
                data_bytes=cells * 8.0,
                memory_bytes=float(rank_bytes.sum()),
                rank_bytes=rank_bytes,
            ))
        t = WorkloadTrace("pressure", 3, nranks, 8.0, records)
        config = WorkflowConfig(mode=Mode.ADAPTIVE_MIDDLEWARE, sim_cores=8,
                                staging_cores=4, spec=titan(),
                                analysis_cost_per_cell=0.5,
                                insitu_memory_factor=1.0)
        result = run_workflow(config, t)
        counts = result.placement_counts()
        assert counts[Placement.IN_SITU] == 0
        assert counts[Placement.IN_TRANSIT] == 6

    def test_global_reduction_restores_insitu_feasibility(self):
        """With the application layer allowed to reduce, the same
        memory-pressured workload can analyse in-situ again."""
        from repro.core.preferences import UserHints

        nranks = 8
        cells = int(4e6)
        capacity = titan().memory_per_core
        records = []
        for step in range(1, 7):
            rank_bytes = np.full(nranks, capacity * 0.9)
            records.append(StepRecord(
                step=step,
                sim_work=cells * 8.0,
                cells=cells,
                data_bytes=cells * 8.0,
                memory_bytes=float(rank_bytes.sum()),
                rank_bytes=rank_bytes,
                analysis_intensity=5.0,  # staging overloaded -> wants in-situ
            ))
        t = WorkloadTrace("pressure2", 3, nranks, 8.0, records)
        config = WorkflowConfig(
            mode=Mode.GLOBAL, sim_cores=8, staging_cores=4, spec=titan(),
            analysis_cost_per_cell=0.5,
            hints=UserHints(downsample_phases=((1, (4, 8)),)),
        )
        result = run_workflow(config, t)
        assert all(m.factor >= 4 for m in result.steps)
        assert all(m.analysis_done_at is not None for m in result.steps)


class TestStaticModesIgnoreHints:
    def test_static_insitu_never_reduces(self):
        from repro.core.preferences import UserHints

        config = WorkflowConfig(
            mode=Mode.STATIC_INSITU, sim_cores=256, staging_cores=16,
            spec=titan(),
            hints=UserHints(downsample_phases=((1, (2, 4)),)),
        )
        result = run_workflow(config, trace())
        assert all(m.factor == 1 for m in result.steps)
        assert all(m.data_bytes_out == m.data_bytes_full for m in result.steps)
