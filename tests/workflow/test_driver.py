"""Integration tests for the coupled workflow driver.

These tests verify the qualitative results of the paper's evaluation on
small configurations: adaptive placement beats both statics, global
cross-layer adaptation reduces movement and overhead further, adaptive
resource allocation raises utilization.
"""

import pytest

from repro.core.actions import Placement
from repro.core.preferences import Objective, UserHints, UserPreferences
from repro.errors import WorkflowError
from repro.hpc.systems import titan
from repro.workflow.config import Mode, WorkflowConfig
from repro.workflow.driver import run_workflow
from repro.workflow.metrics import core_usage_histogram
from repro.workload.synthetic import SyntheticAMRConfig, synthetic_amr_trace


def small_trace(steps=20, seed=0, growth=1.5, nranks=64):
    cfg = SyntheticAMRConfig(
        steps=steps,
        nranks=nranks,
        base_cells=2e7,
        sim_cost_per_cell=1.0,
        growth=growth,
        # Full refinement coupling: late-run analysis overloads the 16:1
        # staging partition, which is the regime where adaptation matters.
        analysis_growth_exponent=1.0,
        seed=seed,
    )
    return synthetic_amr_trace(cfg)


def config(mode, sim_cores=1024, staging_cores=64, **kw):
    # 16:1 core ratio and 0.035 work/cell put the mean in-transit/sim time
    # ratio at ~0.56: staging keeps up on typical steps but falls behind on
    # complex-isosurface bursts -- the regime the paper's adaptation targets.
    return WorkflowConfig(
        mode=mode, sim_cores=sim_cores, staging_cores=staging_cores,
        spec=titan(), analysis_cost_per_cell=0.035, **kw
    )


class TestBasicExecution:
    def test_static_insitu_all_steps_insitu(self):
        result = run_workflow(config(Mode.STATIC_INSITU), small_trace())
        counts = result.placement_counts()
        assert counts[Placement.IN_SITU] == 20
        assert counts[Placement.IN_TRANSIT] == 0
        assert result.data_moved_bytes == 0.0

    def test_static_intransit_moves_all_data(self):
        trace = small_trace()
        result = run_workflow(config(Mode.STATIC_INTRANSIT), trace)
        counts = result.placement_counts()
        assert counts[Placement.IN_TRANSIT] == 20
        assert result.data_moved_bytes == pytest.approx(trace.total_data_bytes)

    def test_every_analysis_completes(self):
        for mode in Mode:
            result = run_workflow(config(mode), small_trace(steps=10))
            assert all(m.analysis_done_at is not None for m in result.steps)

    def test_end_to_end_at_least_sim_time(self):
        for mode in Mode:
            result = run_workflow(config(mode), small_trace(steps=10))
            assert result.end_to_end_seconds >= result.total_sim_seconds
            assert result.overhead_seconds >= 0

    def test_insitu_overhead_is_sum_of_analysis(self):
        result = run_workflow(config(Mode.STATIC_INSITU), small_trace())
        expected = sum(m.insitu_seconds for m in result.steps)
        assert result.overhead_seconds == pytest.approx(expected, rel=1e-9)

    def test_empty_trace_rejected(self):
        from repro.workload.trace import WorkloadTrace

        trace = WorkloadTrace("empty", 3, 4, 8.0, [])
        with pytest.raises(WorkflowError):
            run_workflow(config(Mode.STATIC_INSITU), trace)

    def test_deterministic(self):
        a = run_workflow(config(Mode.ADAPTIVE_MIDDLEWARE), small_trace(seed=5))
        b = run_workflow(config(Mode.ADAPTIVE_MIDDLEWARE), small_trace(seed=5))
        assert a.end_to_end_seconds == b.end_to_end_seconds
        assert a.data_moved_bytes == b.data_moved_bytes


class TestMiddlewareAdaptation:
    """Paper Section 5.2.2 (Figs. 7-8): adaptive placement."""

    def test_adaptive_beats_both_statics(self):
        trace = small_trace(steps=30, growth=2.0)
        results = {
            mode: run_workflow(config(mode), trace)
            for mode in (Mode.STATIC_INSITU, Mode.STATIC_INTRANSIT,
                         Mode.ADAPTIVE_MIDDLEWARE)
        }
        adapt = results[Mode.ADAPTIVE_MIDDLEWARE]
        assert adapt.end_to_end_seconds <= results[Mode.STATIC_INSITU].end_to_end_seconds + 1e-9
        assert adapt.end_to_end_seconds <= results[Mode.STATIC_INTRANSIT].end_to_end_seconds + 1e-9

    def test_adaptive_reduces_data_movement_vs_intransit(self):
        trace = small_trace(steps=30, growth=2.0)
        static = run_workflow(config(Mode.STATIC_INTRANSIT), trace)
        adapt = run_workflow(config(Mode.ADAPTIVE_MIDDLEWARE), trace)
        assert adapt.data_moved_bytes < static.data_moved_bytes

    def test_adaptive_mixes_placements(self):
        trace = small_trace(steps=30, growth=2.0)
        result = run_workflow(config(Mode.ADAPTIVE_MIDDLEWARE), trace)
        counts = result.placement_counts()
        assert counts[Placement.IN_SITU] > 0
        assert counts[Placement.IN_TRANSIT] > 0

    def test_first_step_goes_intransit(self):
        # Fig. 4: at ts=1 in-transit processors are idle.
        result = run_workflow(config(Mode.ADAPTIVE_MIDDLEWARE), small_trace())
        assert result.steps[0].placement is Placement.IN_TRANSIT


class TestResourceAdaptation:
    """Paper Section 5.2.3 (Fig. 9 + Eq. 12)."""

    def test_adaptive_uses_fewer_cores(self):
        trace = small_trace(steps=20)
        result = run_workflow(config(Mode.ADAPTIVE_RESOURCE), trace)
        series = result.staging_cores_series()
        assert series.min() < 64  # shrinks below the static preallocation

    def test_adaptive_improves_utilization(self):
        trace = small_trace(steps=20)
        static = run_workflow(config(Mode.STATIC_INTRANSIT), trace)
        adaptive = run_workflow(config(Mode.ADAPTIVE_RESOURCE), trace)
        assert adaptive.utilization_efficiency > static.utilization_efficiency

    def test_allocation_tracks_data_growth(self):
        trace = small_trace(steps=24, growth=3.0)
        result = run_workflow(config(Mode.ADAPTIVE_RESOURCE), trace)
        series = result.staging_cores_series()
        early = series[:6].mean()
        late = series[-6:].mean()
        assert late > early  # refinement demands more staging cores

    def test_time_to_solution_not_hurt_much(self):
        trace = small_trace(steps=20)
        static = run_workflow(config(Mode.STATIC_INTRANSIT), trace)
        adaptive = run_workflow(config(Mode.ADAPTIVE_RESOURCE), trace)
        assert adaptive.end_to_end_seconds <= static.end_to_end_seconds * 1.10


class TestGlobalAdaptation:
    """Paper Section 5.2.4 (Figs. 10-11, Table 2)."""

    def _hints(self):
        return UserHints(downsample_phases=((1, (2, 4)), (11, (2, 4, 8, 16))))

    def test_global_reduces_overhead_vs_local(self):
        trace = small_trace(steps=30, growth=2.0)
        local = run_workflow(config(Mode.ADAPTIVE_MIDDLEWARE), trace)
        glob = run_workflow(config(Mode.GLOBAL, hints=self._hints()), trace)
        assert glob.overhead_seconds < local.overhead_seconds

    def test_global_reduces_data_movement_vs_local(self):
        trace = small_trace(steps=30, growth=2.0)
        local = run_workflow(config(Mode.ADAPTIVE_MIDDLEWARE), trace)
        glob = run_workflow(config(Mode.GLOBAL, hints=self._hints()), trace)
        assert glob.data_moved_bytes < local.data_moved_bytes

    def test_global_applies_reduction_factors(self):
        trace = small_trace(steps=30)
        glob = run_workflow(config(Mode.GLOBAL, hints=self._hints()), trace)
        factors = set(glob.factors_used())
        assert factors <= {2, 4, 8, 16}
        assert any(f > 1 for f in factors)

    def test_global_more_intransit_steps(self):
        # "the analysis may be adapted to perform in-transit more
        # frequently on such condition" (reduced data drains faster).
        trace = small_trace(steps=30, growth=2.0)
        local = run_workflow(config(Mode.ADAPTIVE_MIDDLEWARE), trace)
        glob = run_workflow(config(Mode.GLOBAL, hints=self._hints()), trace)
        assert (
            glob.placement_counts()[Placement.IN_TRANSIT]
            >= local.placement_counts()[Placement.IN_TRANSIT]
        )

    def test_utilization_objective_global(self):
        trace = small_trace(steps=15)
        cfg = config(
            Mode.GLOBAL,
            hints=self._hints(),
            preferences=UserPreferences(
                objective=Objective.MAXIMIZE_RESOURCE_UTILIZATION
            ),
        )
        result = run_workflow(cfg, trace)
        # Middleware excluded -> everything defaults in-transit.
        assert result.placement_counts()[Placement.IN_SITU] == 0
        assert result.staging_cores_series().min() < 64


class TestTable2Histogram:
    def test_buckets_sum_to_intransit_steps(self):
        trace = small_trace(steps=25)
        result = run_workflow(
            config(Mode.GLOBAL, hints=UserHints(downsample_phases=((1, (2, 4)),))),
            trace,
        )
        buckets = core_usage_histogram(result)
        assert sum(buckets.values()) == result.placement_counts()[Placement.IN_TRANSIT]

    def test_static_all_full_usage(self):
        result = run_workflow(config(Mode.STATIC_INTRANSIT), small_trace(steps=10))
        buckets = core_usage_histogram(result)
        assert buckets["100%"] == 10
        assert buckets["<50%"] == 0

    def test_bad_prealloc_rejected(self):
        result = run_workflow(config(Mode.STATIC_INSITU), small_trace(steps=5))
        with pytest.raises(WorkflowError):
            core_usage_histogram(result, preallocated=0)


class TestMonitorInterval:
    def test_sparse_sampling_reuses_decisions(self):
        trace = small_trace(steps=20)
        hints = UserHints(monitor_interval=5)
        result = run_workflow(config(Mode.ADAPTIVE_RESOURCE, hints=hints), trace)
        series = result.staging_cores_series()
        # Between samples the allocation must be constant.
        for i in range(len(series) - 1):
            if (i + 1) % 5 != 0:  # steps are 1-based; change only at samples
                assert series[i + 1] == series[i] or (trace.steps[i + 1].step % 5 == 0)
