"""Tests for trigger-detection policies and their self-calibration loop."""

import numpy as np
import pytest

from repro.core.monitor import Monitor
from repro.core.preferences import UserHints
from repro.errors import PolicyError
from repro.faults import CoreLoss, CoreRestore, FaultPlan
from repro.hpc.systems import titan
from repro.observability import (
    MetricsRegistry,
    PredictionLedger,
    Tracer,
)
from repro.observability.events import (
    TRIGGER_FIRED,
    TRIGGER_RECALIBRATED,
    TRIGGER_SUPPRESSED,
)
from repro.workflow.config import Mode, WorkflowConfig
from repro.workflow.driver import CoupledWorkflow, run_workflow
from repro.workflow.triggers import (
    TRIGGER_POLICIES,
    CalibrationFeedback,
    EntropyPercentile,
    FixedInterval,
    Imbalance,
    StagingPressure,
    TriggerIndicators,
    build_trigger,
    percentile_sample_size,
)
from repro.workload.synthetic import SyntheticAMRConfig, synthetic_amr_trace


def indicators(step=1, rank_bytes=None, imbalance=1.0, occupancy=0.0,
               queue_depth=0, sim_seconds=1.0):
    ranks = rank_bytes if rank_bytes is not None else np.full(64, 1e6)
    return TriggerIndicators(
        step=step,
        sim_seconds=sim_seconds,
        data_bytes=float(ranks.sum()),
        rank_bytes=ranks,
        imbalance=imbalance,
        staging_occupancy=occupancy,
        staging_queue_depth=queue_depth,
    )


def feedback(step=5, bias_pct=None, regret=0.0, flips=0.0, scored=0):
    return CalibrationFeedback(
        step=step,
        bias_pct=bias_pct or {},
        mape_pct={q: abs(v) for q, v in (bias_pct or {}).items()},
        regret_seconds=regret,
        flip_fraction=flips,
        scored=scored,
    )


class TestPercentileSampleSize:
    def test_papers_headline_budget(self):
        # eps=0.1, delta=0.05: s = ceil(ln(40) / 0.02) = 185, regardless
        # of population size -- the bound's whole point.
        assert percentile_sample_size(0.1, 0.05) == 185

    def test_looser_eps_is_cheaper(self):
        assert percentile_sample_size(0.15, 0.05) == 82
        assert percentile_sample_size(0.15, 0.05) < percentile_sample_size(0.1, 0.05)

    def test_invalid_inputs(self):
        for eps, delta in [(0.0, 0.05), (1.0, 0.05), (0.1, 0.0), (0.1, 1.0)]:
            with pytest.raises(PolicyError):
                percentile_sample_size(eps, delta)


class TestFixedInterval:
    def test_fires_on_cadence(self):
        trig = FixedInterval(interval=4)
        assert not trig.should_adapt(indicators(step=3)).fire
        decision = trig.should_adapt(indicators(step=4))
        assert decision.fire
        assert decision.policy == "fixed-interval"
        assert decision.budget_spent == 0
        assert trig.evaluations == 2
        assert trig.fires == 1

    def test_invalid_interval(self):
        with pytest.raises(PolicyError):
            FixedInterval(interval=0)


class TestEntropyPercentile:
    def test_first_evaluation_bootstraps(self):
        trig = EntropyPercentile()
        decision = trig.should_adapt(indicators(step=1))
        assert decision.fire
        assert decision.reason == "no reference yet"

    def test_budget_bounded_and_rank_count_independent(self):
        trig = EntropyPercentile(eps=0.15)
        small = trig.should_adapt(indicators(step=1, rank_bytes=np.full(32, 1e6)))
        assert small.budget_spent == 32  # fewer ranks than the bound
        big = trig.should_adapt(
            indicators(step=2, rank_bytes=np.full(100_000, 1e6)))
        assert big.budget_spent == trig.sample_size == 82

    def test_fires_on_drift_only(self):
        trig = EntropyPercentile(threshold=0.2, max_interval=0)
        ranks = np.full(64, 1e6)
        first = trig.should_adapt(indicators(step=1, rank_bytes=ranks))
        trig.note_adapted(1, first)
        calm = trig.should_adapt(indicators(step=2, rank_bytes=ranks * 1.05))
        assert not calm.fire
        spike = trig.should_adapt(indicators(step=3, rank_bytes=ranks * 2.0))
        assert spike.fire
        assert "drifted" in spike.reason

    def test_reference_resets_only_on_note_adapted(self):
        trig = EntropyPercentile(threshold=0.2, max_interval=0)
        ranks = np.full(64, 1e6)
        trig.note_adapted(1, trig.should_adapt(indicators(step=1, rank_bytes=ranks)))
        fired = trig.should_adapt(indicators(step=2, rank_bytes=ranks * 2.0))
        assert fired.fire
        # No adaptation ran (suppose the engine was down): the reference
        # stays at the step-1 value, so the same level keeps firing.
        again = trig.should_adapt(indicators(step=3, rank_bytes=ranks * 2.0))
        assert again.fire

    def test_min_interval_suppresses(self):
        trig = EntropyPercentile(threshold=0.1, min_interval=3, max_interval=0)
        ranks = np.full(64, 1e6)
        trig.note_adapted(1, trig.should_adapt(indicators(step=1, rank_bytes=ranks)))
        held = trig.should_adapt(indicators(step=2, rank_bytes=ranks * 3.0))
        assert not held.fire
        assert "min-interval" in held.reason

    def test_max_interval_bounds_staleness(self):
        trig = EntropyPercentile(threshold=10.0, max_interval=4)
        ranks = np.full(64, 1e6)
        trig.note_adapted(1, trig.should_adapt(indicators(step=1, rank_bytes=ranks)))
        for step in (2, 3, 4):
            assert not trig.should_adapt(
                indicators(step=step, rank_bytes=ranks)).fire
        stale = trig.should_adapt(indicators(step=5, rank_bytes=ranks))
        assert stale.fire
        assert "staleness" in stale.reason

    def test_sampling_deterministic_per_step(self):
        ranks = np.linspace(1.0, 2.0, 1000)
        a = EntropyPercentile(seed=7)
        b = EntropyPercentile(seed=7)
        # b evaluates step 1 twice first: per-step seeding makes replays
        # call-count independent.
        b.should_adapt(indicators(step=1, rank_bytes=ranks))
        assert (
            a.should_adapt(indicators(step=1, rank_bytes=ranks)).value
            == b.should_adapt(indicators(step=1, rank_bytes=ranks)).value
        )

    def test_recalibrate_tightens_on_flips(self):
        trig = EntropyPercentile(threshold=0.2)
        changes = trig.recalibrate(feedback(flips=0.5, scored=4))
        assert changes == {"threshold": (0.2, pytest.approx(0.16))}
        assert trig.threshold == pytest.approx(0.16)

    def test_recalibrate_loosens_when_calibrated(self):
        trig = EntropyPercentile(threshold=0.2)
        changes = trig.recalibrate(
            feedback(bias_pct={"insitu_time": 1.0}, flips=0.0, scored=4))
        assert changes == {"threshold": (0.2, pytest.approx(0.22))}

    def test_recalibrate_noop_without_evidence(self):
        trig = EntropyPercentile()
        assert trig.recalibrate(feedback(scored=0)) is None

    def test_invalid_inputs(self):
        with pytest.raises(PolicyError):
            EntropyPercentile(percentile=100.0)
        with pytest.raises(PolicyError):
            EntropyPercentile(threshold=0.0)
        with pytest.raises(PolicyError):
            EntropyPercentile(min_interval=0)
        with pytest.raises(PolicyError):
            EntropyPercentile(min_interval=3, max_interval=2)


class TestImbalance:
    def test_threshold_crossing_fires_both_ways(self):
        trig = Imbalance(threshold=1.5)
        trig.note_adapted(1, trig.should_adapt(indicators(step=1, imbalance=1.1)))
        up = trig.should_adapt(indicators(step=2, imbalance=1.6))
        assert up.fire and "crossed" in up.reason
        trig.note_adapted(2, up)
        down = trig.should_adapt(indicators(step=3, imbalance=1.2))
        assert down.fire

    def test_drift_fires_below_threshold(self):
        trig = Imbalance(threshold=5.0, drift=0.25)
        trig.note_adapted(1, trig.should_adapt(indicators(step=1, imbalance=1.0)))
        assert not trig.should_adapt(indicators(step=2, imbalance=1.1)).fire
        assert trig.should_adapt(indicators(step=3, imbalance=1.4)).fire

    def test_zero_budget(self):
        assert Imbalance().should_adapt(indicators(step=1)).budget_spent == 0

    def test_invalid_inputs(self):
        with pytest.raises(PolicyError):
            Imbalance(threshold=0.9)
        with pytest.raises(PolicyError):
            Imbalance(drift=0.0)


class TestStagingPressure:
    def test_edge_triggered_on_pressure_changes(self):
        trig = StagingPressure(occupancy=0.75, queue_depth=4)
        assert trig.should_adapt(indicators(step=1)).fire  # first verdict
        assert not trig.should_adapt(indicators(step=2, occupancy=0.5)).fire
        onset = trig.should_adapt(indicators(step=3, occupancy=0.8))
        assert onset.fire and "pressured" in onset.reason
        assert not trig.should_adapt(indicators(step=4, occupancy=0.9)).fire
        release = trig.should_adapt(indicators(step=5, occupancy=0.1))
        assert release.fire and "released" in release.reason

    def test_queue_depth_alone_pressures(self):
        trig = StagingPressure(occupancy=0.99, queue_depth=2)
        trig.should_adapt(indicators(step=1))
        assert trig.should_adapt(indicators(step=2, queue_depth=2)).fire

    def test_invalid_inputs(self):
        with pytest.raises(PolicyError):
            StagingPressure(occupancy=0.0)
        with pytest.raises(PolicyError):
            StagingPressure(queue_depth=0)


class TestRegistry:
    def test_registry_builds_every_policy(self):
        for name in TRIGGER_POLICIES:
            assert build_trigger(name).name == name

    def test_unknown_name_lists_known(self):
        with pytest.raises(PolicyError, match="entropy-percentile"):
            build_trigger("nope")

    def test_recalibrate_every_forwarded(self):
        assert build_trigger("imbalance", recalibrate_every=5).recalibrate_every == 5
        with pytest.raises(PolicyError):
            build_trigger("imbalance", recalibrate_every=-1)


class TestMonitorTriggerSurface:
    def make_monitor(self, **kwargs):
        return Monitor(core_rate=1e4, network_bandwidth=1e9, **kwargs)

    def test_evaluate_trigger_publishes_events_and_metrics(self):
        metrics = MetricsRegistry()
        tracer = Tracer()
        monitor = self.make_monitor(
            trigger=EntropyPercentile(), metrics=metrics, tracer=tracer)
        monitor.evaluate_trigger(indicators(step=1))  # bootstrap: fires
        monitor.trigger.note_adapted(1, None)
        monitor.evaluate_trigger(indicators(step=2))  # no drift: suppressed
        assert metrics.counter("monitor.trigger_fires").value == 1
        assert metrics.counter("monitor.sampling_budget_used").value == 2 * 64
        assert len(tracer.events(kind=TRIGGER_FIRED)) == 1
        assert len(tracer.events(kind=TRIGGER_SUPPRESSED)) == 1

    def test_recalibrate_trigger_corrects_estimate_bias(self):
        tracer = Tracer()
        monitor = self.make_monitor(trigger=FixedInterval(), tracer=tracer)
        # The ledger measured 50% over-prediction: bias walks down by half
        # a multiplicative step (sqrt of the exact 1/1.5 correction).
        changes = monitor.recalibrate_trigger(
            feedback(bias_pct={"insitu_time": 50.0, "intransit_time": 50.0}))
        old, new = changes["estimate_bias"]
        assert old == 1.0
        assert new == pytest.approx((1 / 1.5) ** 0.5)
        assert monitor.estimate_bias == new
        events = tracer.events(kind=TRIGGER_RECALIBRATED)
        assert len(events) == 1
        assert events[0].fields["estimate_bias_new"] == new

    def test_recalibrate_trigger_dead_band(self):
        monitor = self.make_monitor(trigger=FixedInterval())
        assert monitor.recalibrate_trigger(
            feedback(bias_pct={"insitu_time": 1.0})) == {}
        assert monitor.estimate_bias == 1.0

    def test_forced_sample_restarts_cadence(self):
        monitor = self.make_monitor(interval=4)
        assert monitor.should_sample(4)
        monitor.note_forced_sample(3)
        # The forced off-interval sample already refreshed the state:
        # the next modulo hit inside the window must not double-sample.
        assert not monitor.should_sample(4)
        assert monitor.should_sample(8)


class TestCalibrationFeedback:
    def test_from_ledger_summarizes(self):
        ledger = PredictionLedger(clock=lambda: 0.0)
        for step, (predicted, actual) in enumerate([(1.0, 2.0), (1.0, 2.0)], 1):
            ledger.predict("insitu_time", step, predicted, mechanism="m")
            ledger.resolve("insitu_time", step, actual)
        fb = CalibrationFeedback.from_ledger(ledger, step=7)
        assert fb.step == 7
        assert fb.bias_pct["insitu_time"] == pytest.approx(-50.0)
        assert fb.scored == 0 and fb.flip_fraction == 0.0
        assert fb.estimator_bias_pct("insitu_time") == pytest.approx(-50.0)
        assert fb.estimator_bias_pct("never_seen") == 0.0


def small_trace(steps=8):
    return synthetic_amr_trace(SyntheticAMRConfig(
        steps=steps, nranks=64, base_cells=2e7, sim_cost_per_cell=1.0,
        growth=1.5, analysis_growth_exponent=1.0, seed=0))


def small_config(**hints):
    return WorkflowConfig(
        mode=Mode.GLOBAL, sim_cores=1024, staging_cores=64, spec=titan(),
        analysis_cost_per_cell=0.035,
        hints=UserHints(**hints) if hints else UserHints(),
    )


class TestWorkflowIntegration:
    def test_fixed_interval_trigger_matches_fixed_cadence(self):
        # The baseline policy reproduces the trigger-free path exactly:
        # same sampled steps, same end-to-end time, same bytes moved.
        for interval in (1, 3):
            plain = CoupledWorkflow(
                small_config(monitor_interval=interval), small_trace())
            base = plain.run()
            triggered = CoupledWorkflow(
                small_config(monitor_interval=interval), small_trace(),
                trigger=FixedInterval(interval=interval))
            result = triggered.run()
            assert result.end_to_end_seconds == base.end_to_end_seconds
            assert result.data_moved_bytes == base.data_moved_bytes
            assert [s.step for s in triggered.monitor.history] == [
                s.step for s in plain.monitor.history]

    def test_entropy_trigger_spends_less_than_full_snapshots(self):
        metrics = MetricsRegistry()
        workflow = CoupledWorkflow(
            small_config(), small_trace(), metrics=metrics,
            trigger=EntropyPercentile())
        workflow.run()
        snapshots = metrics.counter("monitor.samples_taken").value
        budget = metrics.counter("monitor.sampling_budget_used").value
        trace = small_trace()
        assert 0 < snapshots < len(trace)
        assert budget == len(trace) * trace.nranks == 8 * 64  # tiny run: all ranks
        assert metrics.counter("monitor.trigger_fires").value == snapshots

    def test_trigger_events_emitted(self):
        tracer = Tracer()
        workflow = CoupledWorkflow(
            small_config(), small_trace(), tracer=tracer,
            trigger=EntropyPercentile())
        workflow.run()
        fired = tracer.events(kind=TRIGGER_FIRED)
        suppressed = tracer.events(kind=TRIGGER_SUPPRESSED)
        assert len(fired) == workflow.trigger.fires > 0
        assert len(fired) + len(suppressed) == workflow.trigger.evaluations == 8

    def test_recalibration_cadence_runs_from_ledger(self):
        tracer = Tracer()
        ledger = PredictionLedger()
        workflow = CoupledWorkflow(
            small_config(), small_trace(), tracer=tracer, ledger=ledger,
            trigger=EntropyPercentile(recalibrate_every=2))
        workflow.run()
        # The cadence asked for recalibration whether or not thresholds
        # moved; the event only fires when something changed, so just
        # assert the plumbing did not blow up and the ledger was read.
        assert len(ledger) > 0
        assert workflow.trigger.recalibrate_every == 2
        assert len(tracer.events(kind=TRIGGER_RECALIBRATED)) >= 0

    def test_run_workflow_accepts_trigger(self):
        result = run_workflow(
            small_config(), small_trace(), trigger=StagingPressure())
        assert result.end_to_end_seconds > 0


class TestForcedSampleCadence:
    """Regression: a fault-forced off-interval sample must restart the
    fixed cadence, not double-sample on the next modulo hit."""

    def test_no_resample_inside_interval_after_forced_sample(self):
        config = small_config(monitor_interval=4)
        baseline = run_workflow(config, small_trace(12))
        plan = FaultPlan([
            CoreLoss(at=0.3 * baseline.end_to_end_seconds, cores=64),
            CoreRestore(at=0.7 * baseline.end_to_end_seconds, cores=64),
        ])
        workflow = CoupledWorkflow(config, small_trace(12), faults=plan)
        workflow.run()
        sampled = [s.step for s in workflow.monitor.history]
        forced = [s for s in sampled if s != 1 and s % 4 != 0]
        assert forced, "fault should force off-cadence re-samples"
        for f in forced:
            hits = [s for s in sampled if f < s < f + 4 and s % 4 == 0]
            assert not hits, (
                f"modulo re-sample at {hits} inside the {f}+4 window"
            )

    def test_fault_free_cadence_untouched(self):
        workflow = CoupledWorkflow(small_config(monitor_interval=4),
                                   small_trace(12))
        workflow.run()
        assert [s.step for s in workflow.monitor.history] == [1, 4, 8, 12]
