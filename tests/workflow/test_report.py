"""Tests for result serialization and comparisons."""

import pytest

from repro.errors import WorkflowError
from repro.hpc.systems import titan
from repro.workflow.config import Mode, WorkflowConfig
from repro.workflow.driver import run_workflow
from repro.workflow.report import compare, result_from_json, result_to_json
from repro.workload.synthetic import SyntheticAMRConfig, synthetic_amr_trace


@pytest.fixture(scope="module")
def results():
    trace = synthetic_amr_trace(
        SyntheticAMRConfig(steps=10, nranks=64, base_cells=2e7,
                           sim_cost_per_cell=1.0, growth=1.5, seed=0)
    )
    out = {}
    for mode in (Mode.STATIC_INSITU, Mode.ADAPTIVE_MIDDLEWARE):
        config = WorkflowConfig(mode=mode, sim_cores=1024, staging_cores=64,
                                spec=titan(), analysis_cost_per_cell=0.035)
        out[mode] = run_workflow(config, trace)
    return out


class TestJsonRoundtrip:
    def test_roundtrip_preserves_everything(self, results):
        original = results[Mode.ADAPTIVE_MIDDLEWARE]
        restored = result_from_json(result_to_json(original))
        assert restored.mode == original.mode
        assert restored.end_to_end_seconds == original.end_to_end_seconds
        assert restored.energy_joules == original.energy_joules
        assert len(restored.steps) == len(original.steps)
        for a, b in zip(original.steps, restored.steps):
            assert a.placement == b.placement
            assert a.analysis_done_at == b.analysis_done_at
        restored.validate()

    def test_file_roundtrip(self, results, tmp_path):
        path = tmp_path / "run.json"
        result_to_json(results[Mode.STATIC_INSITU], path)
        restored = result_from_json(path)
        assert restored.mode == "static_insitu"

    def test_garbage_rejected(self):
        with pytest.raises(WorkflowError):
            result_from_json("this is not json {")
        with pytest.raises(WorkflowError):
            result_from_json('{"mode": "x"}')


class TestCompare:
    def test_improvements_positive_for_better_candidate(self, results):
        report = compare(results[Mode.STATIC_INSITU],
                         results[Mode.ADAPTIVE_MIDDLEWARE])
        assert report["overhead_cut_pct"] > 0
        assert report["end_to_end_cut_pct"] > 0

    def test_self_comparison_is_zero(self, results):
        r = results[Mode.STATIC_INSITU]
        report = compare(r, r)
        assert report["overhead_cut_pct"] == pytest.approx(0.0)
        assert report["utilization_gain_pts"] == pytest.approx(0.0)

    def test_zero_baseline_handled(self, results):
        insitu = results[Mode.STATIC_INSITU]  # moves zero bytes
        adaptive = results[Mode.ADAPTIVE_MIDDLEWARE]
        report = compare(insitu, adaptive)
        assert report["data_movement_cut_pct"] == 0.0
