"""Tests for result serialization and comparisons."""

import json

import pytest

from repro.core.actions import Placement
from repro.errors import WorkflowError
from repro.hpc.systems import titan
from repro.observability import Tracer
from repro.workflow.config import Mode, WorkflowConfig
from repro.workflow.driver import run_workflow
from repro.workflow.metrics import StepMetrics, WorkflowResult
from repro.workflow.report import compare, result_from_json, result_to_json
from repro.workload.synthetic import SyntheticAMRConfig, synthetic_amr_trace


@pytest.fixture(scope="module")
def results():
    trace = synthetic_amr_trace(
        SyntheticAMRConfig(steps=10, nranks=64, base_cells=2e7,
                           sim_cost_per_cell=1.0, growth=1.5, seed=0)
    )
    out = {}
    for mode in (Mode.STATIC_INSITU, Mode.ADAPTIVE_MIDDLEWARE):
        config = WorkflowConfig(mode=mode, sim_cores=1024, staging_cores=64,
                                spec=titan(), analysis_cost_per_cell=0.035)
        out[mode] = run_workflow(config, trace)
    return out


class TestJsonRoundtrip:
    def test_roundtrip_preserves_everything(self, results):
        original = results[Mode.ADAPTIVE_MIDDLEWARE]
        restored = result_from_json(result_to_json(original))
        assert restored.mode == original.mode
        assert restored.end_to_end_seconds == original.end_to_end_seconds
        assert restored.energy_joules == original.energy_joules
        assert len(restored.steps) == len(original.steps)
        for a, b in zip(original.steps, restored.steps):
            assert a.placement == b.placement
            assert a.analysis_done_at == b.analysis_done_at
        restored.validate()

    def test_file_roundtrip(self, results, tmp_path):
        path = tmp_path / "run.json"
        result_to_json(results[Mode.STATIC_INSITU], path)
        restored = result_from_json(path)
        assert restored.mode == "static_insitu"

    def test_garbage_rejected(self):
        with pytest.raises(WorkflowError):
            result_from_json("this is not json {")
        with pytest.raises(WorkflowError):
            result_from_json('{"mode": "x"}')

    def test_full_equality_roundtrip(self, results):
        # Regression: dataclass equality must survive the round trip
        # exactly, enums and None fields included.
        for result in results.values():
            assert result_from_json(result_to_json(result)) == result

    def test_none_analysis_done_at_and_enum_roundtrip(self):
        step = StepMetrics(
            step=1, sim_seconds=1.0, factor=2,
            placement=Placement.POST_PROCESS, staging_cores=4,
            data_bytes_full=100.0, data_bytes_out=50.0,
            insitu_seconds=0.0, block_seconds=0.25,
            analysis_done_at=None,
        )
        original = WorkflowResult(mode="post_processing", steps=[step],
                                  end_to_end_seconds=2.0,
                                  total_sim_seconds=1.0)
        restored = result_from_json(result_to_json(original))
        assert restored == original
        assert restored.steps[0].analysis_done_at is None
        assert restored.steps[0].placement is Placement.POST_PROCESS

    def test_absent_analysis_done_at_reads_as_none(self, results):
        payload = json.loads(result_to_json(results[Mode.STATIC_INSITU]))
        for step in payload["steps"]:
            del step["analysis_done_at"]
        restored = result_from_json(json.dumps(payload))
        assert all(s.analysis_done_at is None for s in restored.steps)

    def test_unknown_placement_rejected(self, results):
        payload = json.loads(result_to_json(results[Mode.STATIC_INSITU]))
        payload["steps"][0]["placement"] = "teleport"
        with pytest.raises(WorkflowError):
            result_from_json(json.dumps(payload))

    def test_trace_events_embedded_and_ignored_on_read(self, results):
        tracer = Tracer()
        tracer.emit("run.start", mode="test")
        original = results[Mode.STATIC_INSITU]
        text = result_to_json(original, tracer=tracer)
        payload = json.loads(text)
        assert payload["trace_events"][0]["kind"] == "run.start"
        assert result_from_json(text) == original


class TestCompare:
    def test_improvements_positive_for_better_candidate(self, results):
        report = compare(results[Mode.STATIC_INSITU],
                         results[Mode.ADAPTIVE_MIDDLEWARE])
        assert report["overhead_cut_pct"] > 0
        assert report["end_to_end_cut_pct"] > 0

    def test_self_comparison_is_zero(self, results):
        r = results[Mode.STATIC_INSITU]
        report = compare(r, r)
        assert report["overhead_cut_pct"] == pytest.approx(0.0)
        assert report["utilization_gain_pts"] == pytest.approx(0.0)

    def test_zero_baseline_handled(self, results):
        insitu = results[Mode.STATIC_INSITU]  # moves zero bytes
        adaptive = results[Mode.ADAPTIVE_MIDDLEWARE]
        report = compare(insitu, adaptive)
        assert report["data_movement_cut_pct"] == 0.0
