"""Unit tests for workflow metrics and Table 2 histogram logic."""

import numpy as np
import pytest

from repro.core.actions import Placement
from repro.errors import WorkflowError
from repro.workflow.metrics import StepMetrics, WorkflowResult, core_usage_histogram


def metric(step=1, placement=Placement.IN_TRANSIT, cores=64, done=10.0,
           data_full=100.0, data_out=100.0, insitu=0.0):
    return StepMetrics(
        step=step,
        sim_seconds=5.0,
        factor=1,
        placement=placement,
        staging_cores=cores,
        data_bytes_full=data_full,
        data_bytes_out=data_out,
        insitu_seconds=insitu,
        block_seconds=0.0,
        analysis_done_at=done,
    )


def result(steps, end=100.0, sim=90.0, total_cores=64):
    return WorkflowResult(
        mode="test", steps=steps, end_to_end_seconds=end,
        total_sim_seconds=sim, staging_total_cores=total_cores,
    )


class TestWorkflowResult:
    def test_overhead_derivations(self):
        r = result([metric()], end=110.0, sim=100.0)
        assert r.overhead_seconds == pytest.approx(10.0)
        assert r.overhead_fraction == pytest.approx(0.1)

    def test_overhead_fraction_zero_sim(self):
        r = result([], end=0.0, sim=0.0)
        assert r.overhead_fraction == 0.0

    def test_placement_counts(self):
        r = result([
            metric(1, Placement.IN_SITU),
            metric(2, Placement.IN_TRANSIT),
            metric(3, Placement.IN_TRANSIT),
        ])
        counts = r.placement_counts()
        assert counts[Placement.IN_SITU] == 1
        assert counts[Placement.IN_TRANSIT] == 2

    def test_staging_cores_series(self):
        r = result([metric(1, cores=10), metric(2, cores=20)])
        np.testing.assert_array_equal(r.staging_cores_series(), [10, 20])

    def test_validate_incomplete_analysis(self):
        r = result([metric(done=None)])
        with pytest.raises(WorkflowError):
            r.validate()

    def test_validate_end_before_sim(self):
        r = result([metric()], end=50.0, sim=90.0)
        with pytest.raises(WorkflowError):
            r.validate()

    def test_validate_data_grew(self):
        r = result([metric(data_full=10.0, data_out=20.0)])
        with pytest.raises(WorkflowError):
            r.validate()


class TestCoreUsageHistogram:
    def test_bucket_edges(self):
        steps = [
            metric(1, cores=64),   # 100%
            metric(2, cores=48),   # 75%
            metric(3, cores=32),   # 50%
            metric(4, cores=31),   # <50%
            metric(5, cores=63),   # >=75% bucket? 63/64 = 98.4% -> 75% bucket
        ]
        buckets = core_usage_histogram(result(steps), preallocated=64)
        assert buckets["100%"] == 1
        assert buckets["75%"] == 2
        assert buckets["50%"] == 1
        assert buckets["<50%"] == 1

    def test_insitu_steps_excluded(self):
        steps = [metric(1, Placement.IN_SITU, cores=64), metric(2, cores=64)]
        buckets = core_usage_histogram(result(steps), preallocated=64)
        assert sum(buckets.values()) == 1

    def test_default_prealloc_from_result(self):
        r = result([metric(cores=32)], total_cores=64)
        assert core_usage_histogram(r)["50%"] == 1

    def test_invalid_prealloc(self):
        with pytest.raises(WorkflowError):
            core_usage_histogram(result([metric()]), preallocated=0)
