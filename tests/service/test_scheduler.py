"""Unit tests for the shared-pool ledger (:class:`TenantScheduler`).

Every mutation must keep exact bookkeeping -- the scheduler is the
service's single source of truth for who holds which staging cores, and
a drift here silently corrupts every tenant's grant.
"""

import pytest

from repro.errors import ServiceError
from repro.service import TenantScheduler


class TestConstruction:
    def test_defaults(self):
        s = TenantScheduler(1024, 64)
        assert s.compute_capacity == 1024
        assert s.staging_total == 64
        assert s.compute_uncommitted == 1024
        assert s.staging_uncommitted == 64

    def test_oversubscribe_scales_compute_only(self):
        s = TenantScheduler(100, 10, oversubscribe=2.5)
        assert s.compute_capacity == 250
        # Staging grants stay physical.
        assert s.staging_total == 10

    def test_rejects_bad_parameters(self):
        with pytest.raises(ServiceError):
            TenantScheduler(0, 64)
        with pytest.raises(ServiceError):
            TenantScheduler(1024, 0)
        with pytest.raises(ServiceError):
            TenantScheduler(1024, 64, oversubscribe=0.5)
        with pytest.raises(ServiceError):
            TenantScheduler(1024, 64, min_share=0.0)
        with pytest.raises(ServiceError):
            TenantScheduler(1024, 64, min_share=1.5)


class TestAdmission:
    def test_full_grant_when_pool_has_room(self):
        s = TenantScheduler(1024, 64)
        assert s.admit(512, 32) == 32
        assert s.compute_committed == 512
        assert s.staging_committed == 32

    def test_squeezed_grant_under_pressure(self):
        s = TenantScheduler(1024, 16)
        assert s.admit(256, 12) == 12
        # 4 cores left; a 12-core request is squeezed onto them because
        # min_share * 12 = 3 <= 4.
        assert s.admit(256, 12) == 4
        assert s.staging_uncommitted == 0

    def test_min_share_floor_blocks_admission(self):
        s = TenantScheduler(1024, 16, min_share=0.5)
        s.admit(256, 16)
        # min grant for a 12-core request is 6 > 0 uncommitted.
        assert not s.fits(256, 12)
        with pytest.raises(ServiceError):
            s.admit(256, 12)

    def test_compute_exhaustion_blocks_admission(self):
        s = TenantScheduler(64, 64)
        s.admit(64, 8)
        assert not s.fits(1, 8)
        with pytest.raises(ServiceError):
            s.admit(1, 8)

    def test_oversubscription_admits_past_physical(self):
        s = TenantScheduler(64, 64, oversubscribe=2.0)
        s.admit(64, 8)
        assert s.fits(64, 8)
        s.admit(64, 8)
        assert s.compute_committed == 128
        assert not s.fits(1, 8)

    def test_feasible_is_empty_machine_fits(self):
        s = TenantScheduler(64, 8)
        s.admit(64, 8)  # machine now full
        assert not s.fits(64, 8)
        assert s.feasible(64, 8)  # but would fit once drained
        assert not s.feasible(65, 8)
        assert not s.feasible(64, 0)
        assert not s.feasible(0, 8)
        # min grant ceil(64 * 0.25) = 16 > pool of 8.
        assert not s.feasible(1, 64)

    def test_min_staging_grant(self):
        s = TenantScheduler(1024, 64, min_share=0.25)
        assert s.min_staging_grant(1) == 1
        assert s.min_staging_grant(4) == 1
        assert s.min_staging_grant(5) == 2
        assert s.min_staging_grant(64) == 16


class TestBorrowAndRelease:
    def test_borrow_clamps_to_uncommitted(self):
        s = TenantScheduler(1024, 16)
        s.admit(256, 12)
        assert s.borrow(8) == 4
        assert s.staging_uncommitted == 0
        assert s.borrow(8) == 0

    def test_borrow_rejects_nonpositive(self):
        s = TenantScheduler(1024, 16)
        with pytest.raises(ServiceError):
            s.borrow(0)

    def test_give_back_restores_pool(self):
        s = TenantScheduler(1024, 16)
        s.admit(256, 8)
        took = s.borrow(4)
        s.give_back(took)
        assert s.staging_committed == 8

    def test_give_back_beyond_committed_raises(self):
        s = TenantScheduler(1024, 16)
        s.admit(256, 8)
        with pytest.raises(ServiceError):
            s.give_back(9)

    def test_release_returns_exact_holdings(self):
        s = TenantScheduler(1024, 64)
        grant = s.admit(512, 32)
        s.release(512, grant, "alice", 100.0)
        assert s.compute_committed == 0
        assert s.staging_committed == 0
        assert s.usage["alice"] == 100.0

    def test_release_accumulates_usage_per_user(self):
        s = TenantScheduler(1024, 64)
        s.admit(100, 8)
        s.admit(100, 8)
        s.release(100, 8, "alice", 10.0)
        s.release(100, 8, "alice", 5.0)
        assert s.usage["alice"] == 15.0
        assert s.usage["bob"] == 0.0

    def test_release_beyond_committed_raises(self):
        s = TenantScheduler(1024, 64)
        s.admit(100, 8)
        with pytest.raises(ServiceError):
            s.release(101, 8, "alice", 0.0)
        with pytest.raises(ServiceError):
            s.release(100, 9, "alice", 0.0)

    def test_full_lifecycle_returns_to_empty(self):
        s = TenantScheduler(128, 32)
        g1 = s.admit(64, 16)
        g2 = s.admit(64, 24)  # squeezed to 16
        assert (g1, g2) == (16, 16)
        took = 0
        s.release(64, g1, "a", 1.0)
        took = s.borrow(10)
        assert took == 10
        s.give_back(took)
        s.release(64, g2, "b", 2.0)
        assert s.compute_committed == 0
        assert s.staging_committed == 0
