"""Integration tests for :class:`WorkflowService` on the shared machine.

The load-bearing guarantee is single-tenant equivalence: a service with
one tenant whose requests equal the pool must be *bit-identical* -- same
result JSON, same tenant trace events -- to the direct
:meth:`CoupledWorkflow.run` path.  The multi-tenant tests then check the
contention behaviour the service exists to expose: queue waits, squeezed
grants, starvation, and grant negotiation against the shared pool.
"""

import pytest

from repro.errors import ServiceError
from repro.hpc.kernel import KERNEL_EVENT_KINDS, event_kind_code
from repro.hpc.systems import titan
from repro.observability.events import (
    TENANT_ADMITTED,
    TENANT_COMPLETED,
    TENANT_GRANT,
    TENANT_QUEUED,
    TENANT_REJECTED,
    TENANT_STARVED,
    TENANT_SUBMITTED,
)
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracer import Tracer
from repro.service import WorkflowService
from repro.workflow.config import Mode, WorkflowConfig
from repro.workflow.driver import CoupledWorkflow
from repro.workflow.report import result_to_json
from repro.workload.synthetic import SyntheticAMRConfig, synthetic_amr_trace


def small_trace(steps=8, seed=0, nranks=64):
    cfg = SyntheticAMRConfig(
        steps=steps,
        nranks=nranks,
        base_cells=2e7,
        sim_cost_per_cell=1.0,
        growth=1.5,
        analysis_growth_exponent=1.0,
        seed=seed,
    )
    return synthetic_amr_trace(cfg)


def config(mode=Mode.GLOBAL, sim_cores=1024, staging_cores=64, **kw):
    return WorkflowConfig(
        mode=mode, sim_cores=sim_cores, staging_cores=staging_cores,
        spec=titan(), analysis_cost_per_cell=0.035, **kw
    )


class TestSingleTenantEquivalence:
    @pytest.mark.parametrize(
        "mode", [Mode.GLOBAL, Mode.ADAPTIVE_RESOURCE, Mode.STATIC_INTRANSIT]
    )
    def test_bit_identical_to_direct_path(self, mode):
        # Same result JSON AND same tenant-visible trace stream: the
        # service with a full-pool tenant is the direct path, byte for
        # byte.
        cfg = config(mode)
        direct_tracer = Tracer()
        direct = CoupledWorkflow(
            cfg, small_trace(steps=10), tracer=direct_tracer
        ).run()

        service_tracer = Tracer()
        service = WorkflowService(
            spec=cfg.spec,
            sim_cores=cfg.sim_cores,
            staging_cores=cfg.staging_cores,
        )
        service.submit(
            "solo", cfg, small_trace(steps=10), tracer=service_tracer
        )
        report = service.run()

        served = report.tenant("solo")
        assert result_to_json(served.result) == result_to_json(direct)
        assert [e.as_dict() for e in service_tracer.events()] == [
            e.as_dict() for e in direct_tracer.events()
        ]
        assert served.queue_wait == 0.0
        assert served.base_grant == cfg.staging_cores
        assert served.final_grant == cfg.staging_cores
        assert report.makespan == direct.end_to_end_seconds
        assert report.fairness_index == 1.0

    def test_scheduler_drains_to_empty(self):
        service = WorkflowService(sim_cores=1024, staging_cores=64)
        service.submit("solo", config(), small_trace())
        service.run()
        assert service.scheduler.compute_committed == 0
        assert service.scheduler.staging_committed == 0


class TestContention:
    def test_fifo_queueing_degrades_second_tenant(self):
        tracer = Tracer()
        metrics = MetricsRegistry()
        service = WorkflowService(
            sim_cores=1024, staging_cores=64,
            tracer=tracer, metrics=metrics,
        )
        # Both want the whole machine: b must wait for a.
        service.submit("a", config(), small_trace(seed=1))
        service.submit("b", config(), small_trace(seed=2), arrival=1.0)
        report = service.run()

        a, b = report.tenant("a"), report.tenant("b")
        assert a.queue_wait == 0.0
        assert b.queue_wait > 0.0
        assert b.admitted_at == pytest.approx(a.completed_at)
        assert b.time_to_solution > b.result.end_to_end_seconds
        assert report.makespan == pytest.approx(b.completed_at)
        # Shared-pool fairness numbers exist and expose the imbalance.
        assert 0.0 < report.fairness_index < 1.0
        shares = [report.occupancy_share(t.name) for t in report.tenants]
        assert sum(shares) == pytest.approx(1.0)

        kinds = {e.kind for e in tracer.events()}
        assert {
            TENANT_SUBMITTED, TENANT_QUEUED, TENANT_ADMITTED, TENANT_COMPLETED
        } <= kinds
        assert metrics.counter("service.tenants_admitted").value == 2
        assert metrics.counter("service.tenants_completed").value == 2
        assert metrics.gauge("service.staging_committed_cores").value == 0
        assert metrics.timer("service.queue_wait_seconds").count == 2

    def test_squeezed_grant_admission(self):
        # Pool of 16 staging cores, two 12-core requests: the second is
        # admitted squeezed onto the 4 uncommitted cores instead of
        # queueing behind the first.
        service = WorkflowService(sim_cores=1024, staging_cores=16)
        service.submit(
            "first", config(sim_cores=256, staging_cores=12),
            small_trace(seed=1),
        )
        service.submit(
            "second", config(sim_cores=256, staging_cores=12),
            small_trace(seed=2),
        )
        report = service.run()
        assert report.tenant("first").base_grant == 12
        assert report.tenant("second").base_grant == 4
        assert report.tenant("second").queue_wait == 0.0
        assert report.tenant("second").staging_share == pytest.approx(4 / 16)

    def test_oversubscribed_compute_admits_concurrently(self):
        service = WorkflowService(
            sim_cores=512, staging_cores=64, oversubscribe=2.0
        )
        service.submit(
            "a", config(sim_cores=512, staging_cores=32), small_trace(seed=1)
        )
        service.submit(
            "b", config(sim_cores=512, staging_cores=32), small_trace(seed=2)
        )
        report = service.run()
        assert report.tenant("a").queue_wait == 0.0
        assert report.tenant("b").queue_wait == 0.0

    def test_starvation_detector_flags_long_wait(self):
        tracer = Tracer()
        service = WorkflowService(
            sim_cores=1024, staging_cores=64,
            starvation_wait=2.0, tracer=tracer,
        )
        service.submit("a", config(), small_trace(seed=1))
        service.submit("b", config(), small_trace(seed=2), arrival=1.0)
        report = service.run()

        assert report.starvations == 1
        assert report.tenant("b").starved
        assert not report.tenant("a").starved
        starved = tracer.events(kind=TENANT_STARVED)
        assert len(starved) == 1
        assert starved[0].fields["tenant"] == "b"
        # The check fires at exactly enqueue + threshold (the solo run
        # takes ~4.8 simulated seconds, so b is still queued at t=3).
        assert starved[0].ts == pytest.approx(1.0 + 2.0)

    def test_bounded_queue_rejects_overflow(self):
        tracer = Tracer()
        metrics = MetricsRegistry()
        service = WorkflowService(
            sim_cores=1024, staging_cores=64, max_queue=1,
            tracer=tracer, metrics=metrics,
        )
        # a admitted immediately (queue drains), b occupies the single
        # queue slot, c is turned away.
        service.submit("a", config(), small_trace(seed=1))
        service.submit("b", config(), small_trace(seed=2), arrival=1.0)
        service.submit("c", config(), small_trace(seed=3), arrival=2.0)
        report = service.run()

        assert report.rejected == ("c",)
        assert {t.name for t in report.tenants} == {"a", "b"}
        rejected = tracer.events(kind=TENANT_REJECTED)
        assert len(rejected) == 1 and rejected[0].fields["tenant"] == "c"
        assert metrics.counter("service.tenants_rejected").value == 1


class TestGrantNegotiation:
    def test_expansion_borrows_uncommitted_pool_cores(self):
        # A lone tenant asking for 8 of a 32-core pool: Eq. 9-10 sizes
        # against the negotiable headroom (grant + uncommitted), so the
        # overloaded staging partition grows past its base grant.
        tracer = Tracer()
        metrics = MetricsRegistry()
        service = WorkflowService(
            sim_cores=1024, staging_cores=32,
            tracer=tracer, metrics=metrics,
        )
        service.submit(
            "greedy", config(staging_cores=8), small_trace(steps=16)
        )
        report = service.run()

        greedy = report.tenant("greedy")
        assert greedy.base_grant == 8
        assert greedy.final_grant > greedy.base_grant
        assert metrics.counter("service.grant_expansions").value > 0
        grants = tracer.events(kind=TENANT_GRANT)
        assert grants and any(e.fields["delta"] > 0 for e in grants)
        # Everything borrowed is returned at completion.
        assert service.scheduler.staging_committed == 0

    def test_neighbour_caps_expansion(self):
        # With a neighbour holding 24 of 32 cores, the same tenant can
        # only ever borrow the 8 uncommitted cores while both run.
        service = WorkflowService(sim_cores=1024, staging_cores=32)
        service.submit(
            "greedy", config(sim_cores=512, staging_cores=8),
            small_trace(steps=16),
        )
        service.submit(
            "neighbour", config(sim_cores=512, staging_cores=16),
            small_trace(seed=3),
        )
        report = service.run()
        greedy = report.tenant("greedy")
        assert greedy.final_grant <= 32 - 16 + 8 or (
            # Unless the neighbour finished first and freed its grant.
            report.tenant("neighbour").completed_at <= greedy.completed_at
        )
        assert service.scheduler.staging_committed == 0


class TestPolicies:
    def _three_tenant_report(self, policy):
        # Staging pool of 16 with full-grant admission (min_share=1):
        # a holds 12, the wide tenant w (8) cannot fit, the narrow
        # tenant n (4) can.  fifo blocks n behind w; smallest backfills.
        service = WorkflowService(
            sim_cores=1024, staging_cores=16,
            policy=policy, min_share=1.0,
        )
        service.submit(
            "a", config(sim_cores=256, staging_cores=12),
            small_trace(seed=1),
        )
        service.submit(
            "w", config(sim_cores=256, staging_cores=8),
            small_trace(seed=2), arrival=1.0,
        )
        service.submit(
            "n", config(sim_cores=256, staging_cores=4),
            small_trace(seed=3), arrival=2.0,
        )
        return service.run()

    def test_fifo_head_of_line_blocks_narrow_tenant(self):
        report = self._three_tenant_report("fifo")
        assert report.tenant("w").queue_wait > 0.0
        assert report.tenant("n").queue_wait > 0.0
        # fifo admits in arrival order once capacity frees.
        assert (
            report.tenant("w").admitted_at <= report.tenant("n").admitted_at
        )

    def test_smallest_backfills_narrow_tenant(self):
        report = self._three_tenant_report("smallest")
        # The narrow tenant slips past the blocked wide head immediately.
        assert report.tenant("n").queue_wait == 0.0
        assert report.tenant("w").queue_wait > 0.0

    def test_fair_share_prefers_unserved_user(self):
        service = WorkflowService(
            sim_cores=1024, staging_cores=64, policy="fair_share"
        )
        # alice's first tenant runs alone and accrues usage; when it
        # completes, bob's queued tenant is admitted before alice's
        # second, despite arriving later.
        service.submit(
            "alice-1", config(), small_trace(seed=1), user="alice"
        )
        service.submit(
            "alice-2", config(), small_trace(seed=2),
            arrival=1.0, user="alice",
        )
        service.submit(
            "bob-1", config(), small_trace(seed=3), arrival=2.0, user="bob"
        )
        report = service.run()
        assert (
            report.tenant("bob-1").admitted_at
            < report.tenant("alice-2").admitted_at
        )


class TestServiceErrors:
    def test_duplicate_tenant_name(self):
        service = WorkflowService()
        service.submit("t", config(), small_trace())
        with pytest.raises(ServiceError):
            service.submit("t", config(), small_trace())

    def test_negative_arrival(self):
        service = WorkflowService()
        with pytest.raises(ServiceError):
            service.submit("t", config(), small_trace(), arrival=-1.0)

    def test_infeasible_tenant_rejected_at_submit(self):
        service = WorkflowService(sim_cores=512, staging_cores=64)
        with pytest.raises(ServiceError):
            service.submit("wide", config(sim_cores=1024), small_trace())

    def test_run_without_tenants(self):
        with pytest.raises(ServiceError):
            WorkflowService().run()

    def test_run_twice(self):
        service = WorkflowService()
        service.submit("t", config(), small_trace())
        service.run()
        with pytest.raises(ServiceError):
            service.run()

    def test_submit_after_run(self):
        service = WorkflowService()
        service.submit("t", config(), small_trace())
        service.run()
        with pytest.raises(ServiceError):
            service.submit("late", config(), small_trace())

    def test_bad_starvation_wait(self):
        with pytest.raises(ServiceError):
            WorkflowService(starvation_wait=0.0)

    def test_unknown_tenant_report(self):
        service = WorkflowService()
        service.submit("t", config(), small_trace())
        report = service.run()
        with pytest.raises(ServiceError):
            report.tenant("ghost")


class TestKernelIntegration:
    def test_tenant_kind_registered(self):
        assert "tenant" in KERNEL_EVENT_KINDS
        from repro.service.tenancy import TENANT_KIND

        assert TENANT_KIND == event_kind_code("tenant")

    def test_service_traffic_rides_tenant_events(self):
        service = WorkflowService()
        service.submit("t", config(), small_trace())
        service.run()
        code = event_kind_code("tenant")
        assert service.sim.kernel.counters.processed[code] > 0
