"""Unit tests for the admission queue and its ordering policies."""

import pytest

from repro.errors import ServiceError
from repro.service import ADMISSION_POLICIES, AdmissionController


class Candidate:
    """Stand-in tenant: the controller treats entries as opaque."""

    def __init__(self, name, footprint, user="default"):
        self.name = name
        self.footprint = footprint
        self.user = user

    def __repr__(self):
        return f"Candidate({self.name})"


def pick(controller, fits=lambda t: True, usage=None):
    return controller.pick(
        fits=fits,
        footprint=lambda t: t.footprint,
        user=lambda t: t.user,
        usage=usage if usage is not None else {},
    )


class TestQueueMechanics:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ServiceError):
            AdmissionController(policy="priority")

    def test_negative_max_queue_rejected(self):
        with pytest.raises(ServiceError):
            AdmissionController(max_queue=-1)

    def test_every_documented_policy_constructs(self):
        for policy in ADMISSION_POLICIES:
            assert AdmissionController(policy=policy).policy == policy

    def test_bounded_queue_rejects_overflow(self):
        q = AdmissionController(max_queue=2)
        assert q.enqueue(Candidate("a", 1))
        assert q.enqueue(Candidate("b", 1))
        assert q.full
        assert not q.enqueue(Candidate("c", 1))
        assert len(q) == 2

    def test_zero_capacity_rejects_everything(self):
        q = AdmissionController(max_queue=0)
        assert not q.enqueue(Candidate("a", 1))

    def test_pick_on_empty_queue(self):
        assert pick(AdmissionController()) is None

    def test_pick_removes_the_returned_entry(self):
        q = AdmissionController()
        a = Candidate("a", 1)
        q.enqueue(a)
        assert pick(q) is a
        assert len(q) == 0


class TestFifo:
    def test_arrival_order(self):
        q = AdmissionController(policy="fifo")
        a, b = Candidate("a", 8), Candidate("b", 2)
        q.enqueue(a)
        q.enqueue(b)
        assert pick(q) is a
        assert pick(q) is b

    def test_head_of_line_blocking(self):
        # The head doesn't fit: nothing behind it is considered, even
        # though b would fit.  This is fifo's defining failure mode.
        q = AdmissionController(policy="fifo")
        q.enqueue(Candidate("a", 8))
        q.enqueue(Candidate("b", 2))
        assert pick(q, fits=lambda t: t.footprint <= 4) is None
        assert len(q) == 2


class TestSmallest:
    def test_backfills_past_blocked_head(self):
        q = AdmissionController(policy="smallest")
        q.enqueue(Candidate("wide", 8))
        narrow = Candidate("narrow", 2)
        q.enqueue(narrow)
        assert pick(q, fits=lambda t: t.footprint <= 4) is narrow
        assert len(q) == 1

    def test_orders_by_footprint(self):
        q = AdmissionController(policy="smallest")
        big, small = Candidate("big", 16), Candidate("small", 1)
        q.enqueue(big)
        q.enqueue(small)
        assert pick(q) is small

    def test_ties_keep_arrival_order(self):
        q = AdmissionController(policy="smallest")
        first, second = Candidate("first", 4), Candidate("second", 4)
        q.enqueue(first)
        q.enqueue(second)
        assert pick(q) is first


class TestFairShare:
    def test_least_served_user_first(self):
        q = AdmissionController(policy="fair_share")
        heavy = Candidate("heavy", 4, user="alice")
        light = Candidate("light", 4, user="bob")
        q.enqueue(heavy)
        q.enqueue(light)
        assert pick(q, usage={"alice": 100.0, "bob": 5.0}) is light

    def test_unseen_user_counts_as_zero(self):
        q = AdmissionController(policy="fair_share")
        veteran = Candidate("veteran", 4, user="alice")
        newcomer = Candidate("newcomer", 4, user="carol")
        q.enqueue(veteran)
        q.enqueue(newcomer)
        assert pick(q, usage={"alice": 1.0}) is newcomer

    def test_falls_through_to_fitting_candidate(self):
        q = AdmissionController(policy="fair_share")
        q.enqueue(Candidate("light-but-wide", 8, user="bob"))
        heavy_narrow = Candidate("heavy-but-narrow", 2, user="alice")
        q.enqueue(heavy_narrow)
        got = pick(
            q,
            fits=lambda t: t.footprint <= 4,
            usage={"alice": 100.0, "bob": 0.0},
        )
        assert got is heavy_narrow
