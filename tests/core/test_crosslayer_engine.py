"""Tests for the root-leaf cross-layer policy, the monitor and the engine."""

import pytest

from repro.core.actions import Placement
from repro.core.engine import AdaptationEngine
from repro.core.mechanisms import Layer, Mechanism, standard_mechanisms
from repro.core.monitor import Monitor
from repro.core.policies.crosslayer import CrossLayerPolicy
from repro.core.preferences import Objective, UserHints, UserPreferences
from repro.errors import PolicyError
from repro.units import GiB, MiB


class TestCrossLayerPolicy:
    def test_time_to_solution_plan_matches_paper(self):
        # Section 4.4's worked example: middleware is root; application and
        # resource are leaves; application runs first (S_data feeds M).
        plan = CrossLayerPolicy().plan_layers(Objective.MINIMIZE_TIME_TO_SOLUTION)
        assert plan == [Layer.APPLICATION, Layer.RESOURCE, Layer.MIDDLEWARE]

    def test_utilization_plan_excludes_middleware(self):
        # Second worked example: resource is root, application is leaf,
        # "the middleware adaptation will not be included".
        plan = CrossLayerPolicy().plan_layers(Objective.MAXIMIZE_RESOURCE_UTILIZATION)
        assert plan == [Layer.APPLICATION, Layer.RESOURCE]

    def test_resolution_objective_application_only(self):
        plan = CrossLayerPolicy().plan_layers(Objective.MAXIMIZE_DATA_RESOLUTION)
        assert plan == [Layer.APPLICATION]

    def test_data_movement_plan_spans_all_layers(self):
        # Reduction and placement both serve the movement preference;
        # resource feeds the placement root, so all three run.
        plan = CrossLayerPolicy().plan_layers(Objective.MINIMIZE_DATA_MOVEMENT)
        assert plan == [Layer.APPLICATION, Layer.RESOURCE, Layer.MIDDLEWARE]

    def test_unmatched_objective_raises(self):
        from repro.core.mechanisms import Mechanism

        lone = Mechanism("only", Layer.RESOURCE,
                         Objective.MAXIMIZE_RESOURCE_UTILIZATION)
        policy = CrossLayerPolicy({Layer.RESOURCE: lone})
        with pytest.raises(PolicyError):
            policy.execution_plan(Objective.MINIMIZE_DATA_MOVEMENT)

    def test_roots_and_leaves_explicit(self):
        policy = CrossLayerPolicy()
        roots = policy.roots(Objective.MINIMIZE_TIME_TO_SOLUTION)
        assert [m.layer for m in roots] == [Layer.MIDDLEWARE]
        leaves = policy.leaves(roots)
        assert {m.layer for m in leaves} == {Layer.APPLICATION, Layer.RESOURCE}

    def test_cycle_detected(self):
        a = Mechanism("a", Layer.APPLICATION, Objective.MAXIMIZE_DATA_RESOLUTION,
                      inputs={"y"}, outputs={"x"})
        b = Mechanism("b", Layer.RESOURCE, Objective.MAXIMIZE_RESOURCE_UTILIZATION,
                      inputs={"x"}, outputs={"y"})
        with pytest.raises(PolicyError):
            CrossLayerPolicy({Layer.APPLICATION: a, Layer.RESOURCE: b})

    def test_standard_mechanism_dependencies(self):
        mechs = standard_mechanisms()
        assert mechs[Layer.APPLICATION].feeds(mechs[Layer.MIDDLEWARE])
        assert mechs[Layer.APPLICATION].feeds(mechs[Layer.RESOURCE])
        assert mechs[Layer.RESOURCE].feeds(mechs[Layer.MIDDLEWARE])
        assert not mechs[Layer.MIDDLEWARE].feeds(mechs[Layer.APPLICATION])


class TestMonitor:
    def test_sampling_interval(self):
        monitor = Monitor(core_rate=1e4, network_bandwidth=1e9, interval=4)
        assert monitor.should_sample(4)
        assert monitor.should_sample(8)
        assert not monitor.should_sample(5)

    def test_estimates_seeded_from_calibration(self):
        monitor = Monitor(core_rate=1e4, network_bandwidth=1e9, network_latency=0.5)
        assert monitor.estimate_insitu(1e6, cores=100) == pytest.approx(1.0)
        assert monitor.estimate_send(1e9) == pytest.approx(1.5)

    def test_rate_learning_moves_estimates(self):
        monitor = Monitor(core_rate=1e4, network_bandwidth=1e9)
        before = monitor.estimate_insitu(1e6, 100)
        # Observed runs are 2x slower than calibration.
        for _ in range(20):
            monitor.observe_insitu(1e6, cores=100, seconds=2.0)
        after = monitor.estimate_insitu(1e6, 100)
        assert after > 1.8 * before

    def test_sim_step_time_ema(self):
        monitor = Monitor(core_rate=1e4, network_bandwidth=1e9)
        assert monitor.expected_sim_step_time == 0.0
        monitor.observe_sim_step(10.0)
        assert monitor.expected_sim_step_time == 10.0
        monitor.observe_sim_step(20.0)
        assert 10.0 < monitor.expected_sim_step_time < 20.0

    def test_snapshot_derives_intransit_memory(self):
        monitor = Monitor(core_rate=1e4, network_bandwidth=1e9)
        common = dict(
            step=1, ndim=3, rank_data_bytes=1 * MiB,
            rank_memory_available=100 * MiB, analysis_work=1e6,
            sim_cores=512, staging_active_cores=32, staging_total_cores=32,
            staging_memory_total=1 * GiB, staging_busy=False,
            est_intransit_remaining=0.0, insitu_memory_ok=True,
            core_rate=1e4,
        )
        ok = monitor.snapshot(data_bytes=0.5 * GiB, staging_memory_used=0.0, **common)
        assert ok.intransit_memory_ok
        full = monitor.snapshot(data_bytes=0.5 * GiB,
                                staging_memory_used=0.8 * GiB, **common)
        assert not full.intransit_memory_ok
        assert len(monitor.history) == 2

    def test_invalid_inputs(self):
        with pytest.raises(PolicyError):
            Monitor(core_rate=1e4, network_bandwidth=1e9, interval=0)
        monitor = Monitor(core_rate=1e4, network_bandwidth=1e9)
        with pytest.raises(PolicyError):
            monitor.observe_sim_step(0.0)


class TestAdaptationEngine:
    def test_local_middleware_only(self, make_state):
        engine = AdaptationEngine(layers={Layer.MIDDLEWARE})
        decision = engine.adapt(make_state())
        assert decision.placement is not None
        assert decision.factor is None
        assert decision.staging_cores is None

    def test_local_plan_order_canonical(self):
        engine = AdaptationEngine(layers={Layer.MIDDLEWARE, Layer.APPLICATION})
        assert engine.plan == [Layer.APPLICATION, Layer.MIDDLEWARE]

    def test_empty_local_layers_rejected(self):
        with pytest.raises(PolicyError):
            AdaptationEngine(layers=set())

    def test_global_mode_runs_full_plan(self, make_state):
        hints = UserHints(downsample_phases=((1, (2, 4)),))
        engine = AdaptationEngine(hints=hints)
        assert engine.mode == "global"
        decision = engine.adapt(make_state())
        assert decision.factor in (2, 4)
        assert decision.staging_cores is not None
        assert decision.placement is not None
        assert len(decision.actions) == 3

    def test_global_reduction_shrinks_resource_demand(self, make_state):
        # With vs without the application layer: reduced data needs fewer
        # staging cores (the cross-layer interaction of Section 5.2.4).
        state = make_state(data_bytes=4 * GiB, analysis_work=4e7,
                           staging_total_cores=256, staging_active_cores=256,
                           staging_memory_total=16 * GiB)
        local = AdaptationEngine(layers={Layer.RESOURCE})
        global_ = AdaptationEngine(hints=UserHints(downsample_phases=((1, (4,)),)))
        m_local = local.adapt(state).staging_cores
        m_global = global_.adapt(state).staging_cores
        assert m_global < m_local

    def test_global_utilization_objective_no_placement(self, make_state):
        prefs = UserPreferences(objective=Objective.MAXIMIZE_RESOURCE_UTILIZATION)
        engine = AdaptationEngine(preferences=prefs)
        decision = engine.adapt(make_state())
        assert decision.placement is None
        assert decision.staging_cores is not None

    def test_decisions_recorded(self, make_state):
        engine = AdaptationEngine(layers={Layer.MIDDLEWARE})
        engine.adapt(make_state(step=1))
        engine.adapt(make_state(step=2))
        assert [d.step for d in engine.decisions] == [1, 2]
