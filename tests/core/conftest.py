"""Shared fixtures: operational-state factory with sensible defaults."""

import pytest

from repro.core.state import OperationalState
from repro.units import GiB, MiB


@pytest.fixture()
def make_state():
    def _make(**overrides):
        defaults = dict(
            step=1,
            ndim=3,
            core_rate=1e4,
            data_bytes=1 * GiB,
            rank_data_bytes=64 * MiB,
            rank_memory_available=256 * MiB,
            analysis_work=1e7,
            sim_cores=2048,
            staging_active_cores=128,
            est_insitu_time=0.5,
            est_intransit_time=8.0,
            est_intransit_remaining=0.0,
            staging_busy=False,
            insitu_memory_ok=True,
            intransit_memory_ok=True,
            staging_total_cores=128,
            staging_memory_total=8 * GiB,
            staging_memory_used=0.0,
            est_next_sim_time=60.0,
            est_send_time=1.0,
        )
        defaults.update(overrides)
        return OperationalState(**defaults)

    return _make
