"""Tests for the minimize-data-movement user preference, end to end."""

import pytest

from repro.core.actions import Placement
from repro.core.policies.application import ApplicationLayerPolicy
from repro.core.policies.middleware import MiddlewarePolicy
from repro.core.preferences import Objective, UserHints, UserPreferences
from repro.hpc.systems import titan
from repro.units import MiB
from repro.workflow.config import Mode, WorkflowConfig
from repro.workflow.driver import run_workflow
from repro.workload.synthetic import SyntheticAMRConfig, synthetic_amr_trace


class TestPolicyBehaviour:
    def test_application_picks_largest_factor(self, make_state):
        hints = UserHints(downsample_phases=((1, (2, 4, 8)),))
        policy = ApplicationLayerPolicy(
            hints, objective=Objective.MINIMIZE_DATA_MOVEMENT
        )
        action = policy.decide(make_state(rank_data_bytes=10 * MiB,
                                          rank_memory_available=512 * MiB))
        assert action.factor == 8

    def test_application_default_unchanged(self, make_state):
        hints = UserHints(downsample_phases=((1, (2, 4, 8)),))
        policy = ApplicationLayerPolicy(hints)
        action = policy.decide(make_state(rank_data_bytes=10 * MiB,
                                          rank_memory_available=512 * MiB))
        assert action.factor == 2

    def test_middleware_prefers_insitu(self, make_state):
        policy = MiddlewarePolicy(objective=Objective.MINIMIZE_DATA_MOVEMENT)
        # Even with idle staging, in-situ wins under the movement objective.
        action = policy.decide(make_state(staging_busy=False))
        assert action.placement is Placement.IN_SITU

    def test_middleware_falls_back_when_insitu_infeasible(self, make_state):
        policy = MiddlewarePolicy(objective=Objective.MINIMIZE_DATA_MOVEMENT)
        action = policy.decide(make_state(insitu_memory_ok=False))
        assert action.placement is Placement.IN_TRANSIT


class TestWorkflowUnderMovementObjective:
    def _trace(self):
        return synthetic_amr_trace(
            SyntheticAMRConfig(steps=15, nranks=64, base_cells=2e7,
                               sim_cost_per_cell=1.0, growth=1.5, seed=0)
        )

    def _run(self, objective):
        config = WorkflowConfig(
            mode=Mode.GLOBAL,
            sim_cores=1024,
            staging_cores=64,
            spec=titan(),
            analysis_cost_per_cell=0.035,
            preferences=UserPreferences(objective=objective),
            hints=UserHints(downsample_phases=((1, (2, 4)),)),
        )
        return run_workflow(config, self._trace())

    def test_movement_objective_moves_less_than_tts(self):
        tts = self._run(Objective.MINIMIZE_TIME_TO_SOLUTION)
        movement = self._run(Objective.MINIMIZE_DATA_MOVEMENT)
        assert movement.data_moved_bytes < tts.data_moved_bytes

    def test_movement_objective_typically_zero_movement(self):
        movement = self._run(Objective.MINIMIZE_DATA_MOVEMENT)
        counts = movement.placement_counts()
        # In-situ memory is plentiful in this configuration: everything
        # stays local.
        assert counts[Placement.IN_SITU] == 15
        assert movement.data_moved_bytes == 0.0

    def test_movement_objective_costs_some_time(self):
        tts = self._run(Objective.MINIMIZE_TIME_TO_SOLUTION)
        movement = self._run(Objective.MINIMIZE_DATA_MOVEMENT)
        # The trade the paper describes: moving nothing serializes analysis
        # with the simulation, so time-to-solution cannot improve.
        assert movement.end_to_end_seconds >= tts.end_to_end_seconds * 0.999
