"""Tests for the hybrid (in-situ + in-transit) placement option."""

import pytest

from repro.core.actions import PlaceAnalysis, Placement
from repro.core.policies.middleware import MiddlewarePolicy
from repro.errors import PolicyError
from repro.hpc.systems import titan
from repro.workflow.config import Mode, WorkflowConfig
from repro.workflow.driver import run_workflow
from repro.workload.synthetic import SyntheticAMRConfig, synthetic_amr_trace


class TestPlaceAnalysisAction:
    def test_fraction_validated(self):
        with pytest.raises(PolicyError):
            PlaceAnalysis(step=1, placement=Placement.HYBRID, insitu_fraction=1.5)
        with pytest.raises(PolicyError):
            PlaceAnalysis(step=1, placement=Placement.HYBRID, insitu_fraction=-0.1)

    def test_insitu_actions_carry_full_fraction(self, make_state):
        state = make_state(staging_busy=True, est_intransit_remaining=10.0,
                           est_insitu_time=2.0)
        action = MiddlewarePolicy().decide(state)
        assert action.placement is Placement.IN_SITU
        assert action.insitu_fraction == 1.0


class TestHybridPolicy:
    def test_disabled_by_default(self, make_state):
        state = make_state(staging_busy=True, est_intransit_remaining=10.0,
                           est_insitu_time=2.0, est_intransit_time=8.0)
        action = MiddlewarePolicy().decide(state)
        assert action.placement is Placement.IN_SITU

    def test_busy_backlog_dominates_stays_binary(self, make_state):
        # When the backlog alone exceeds the in-situ time, no split can
        # beat pure in-situ (the shipped part would finish after the
        # backlog, i.e. after an in-situ run) -- the policy must stay
        # binary even with hybrid enabled.
        state = make_state(staging_busy=True, est_intransit_remaining=10.0,
                           est_insitu_time=2.0, est_intransit_time=8.0)
        action = MiddlewarePolicy(hybrid=True).decide(state)
        assert action.placement is Placement.IN_SITU
        assert action.insitu_fraction == 1.0

    def test_tail_window_split(self, make_state):
        # 3s of simulation remains; backlog 1s; shipping all 8s of
        # in-transit work cannot hide -> ship only the 2s that fits:
        # f = 1 - (3-1)/8 = 0.75.
        state = make_state(staging_busy=True, est_intransit_remaining=1.0,
                           est_insitu_time=0.5, est_intransit_time=8.0,
                           est_remaining_sim_time=3.0)
        action = MiddlewarePolicy(hybrid=True).decide(state)
        assert action.placement is Placement.HYBRID
        assert action.insitu_fraction == pytest.approx(0.75)

    def test_idle_staging_still_all_intransit(self, make_state):
        state = make_state(staging_busy=False)
        action = MiddlewarePolicy(hybrid=True).decide(state)
        assert action.placement is Placement.IN_TRANSIT


class TestHybridWorkflow:
    def _trace(self, steps=25):
        return synthetic_amr_trace(
            SyntheticAMRConfig(steps=steps, nranks=64, base_cells=2e7,
                               sim_cost_per_cell=1.0, growth=2.0,
                               analysis_growth_exponent=1.0, seed=0)
        )

    def _config(self, hybrid):
        return WorkflowConfig(
            mode=Mode.ADAPTIVE_MIDDLEWARE, sim_cores=1024, staging_cores=64,
            spec=titan(), analysis_cost_per_cell=0.035,
            hybrid_placement=hybrid,
        )

    def test_hybrid_runs_and_uses_splits(self):
        result = run_workflow(self._config(hybrid=True), self._trace())
        counts = result.placement_counts()
        assert counts[Placement.HYBRID] > 0
        assert all(m.analysis_done_at is not None for m in result.steps)

    def test_hybrid_at_least_as_good_as_binary(self):
        trace = self._trace()
        binary = run_workflow(self._config(hybrid=False), trace)
        hybrid = run_workflow(self._config(hybrid=True), trace)
        assert hybrid.end_to_end_seconds <= binary.end_to_end_seconds * 1.02

    def test_hybrid_moves_intermediate_data_volume(self):
        trace = self._trace()
        binary = run_workflow(self._config(hybrid=False), trace)
        hybrid = run_workflow(self._config(hybrid=True), trace)
        intransit = run_workflow(
            WorkflowConfig(mode=Mode.STATIC_INTRANSIT, sim_cores=1024,
                           staging_cores=64, spec=titan(),
                           analysis_cost_per_cell=0.035),
            trace,
        )
        # Hybrid ships the hideable share: more than binary adaptive (which
        # diverts whole steps), less than everything.
        assert binary.data_moved_bytes <= hybrid.data_moved_bytes
        assert hybrid.data_moved_bytes <= intransit.data_moved_bytes
