"""Unit tests for the adaptation action value objects."""

import pytest

from repro.core.actions import (
    PlaceAnalysis,
    Placement,
    SetDownsampleFactor,
    SetStagingCores,
)
from repro.errors import PolicyError


class TestActions:
    def test_downsample_factor_validated(self):
        assert SetDownsampleFactor(step=1, factor=4).factor == 4
        with pytest.raises(PolicyError):
            SetDownsampleFactor(step=1, factor=0)

    def test_staging_cores_validated(self):
        assert SetStagingCores(step=1, cores=64).cores == 64
        with pytest.raises(PolicyError):
            SetStagingCores(step=1, cores=0)

    def test_actions_are_frozen(self):
        action = PlaceAnalysis(step=3, placement=Placement.IN_SITU,
                               insitu_fraction=1.0)
        with pytest.raises(AttributeError):
            action.placement = Placement.IN_TRANSIT

    def test_reason_defaults_empty(self):
        assert SetDownsampleFactor(step=1, factor=2).reason == ""

    def test_placement_enum_values(self):
        assert {p.value for p in Placement} == {
            "in_situ", "in_transit", "hybrid", "post_process"
        }

    def test_actions_usable_as_dict_keys(self):
        a = SetDownsampleFactor(step=1, factor=2)
        b = SetDownsampleFactor(step=1, factor=2)
        assert a == b
        assert len({a, b}) == 1
