"""Tests for the middleware (placement) and resource (allocation) policies."""

import pytest

from repro.core.actions import Placement
from repro.core.policies.middleware import MiddlewarePolicy
from repro.core.policies.resource import ResourcePolicy
from repro.errors import PolicyError
from repro.units import GiB, MiB


class TestMiddlewarePolicy:
    def test_case1_only_insitu_memory(self, make_state):
        state = make_state(insitu_memory_ok=True, intransit_memory_ok=False)
        action = MiddlewarePolicy().decide(state)
        assert action.placement is Placement.IN_SITU

    def test_case1_only_intransit_memory(self, make_state):
        state = make_state(insitu_memory_ok=False, intransit_memory_ok=True)
        action = MiddlewarePolicy().decide(state)
        assert action.placement is Placement.IN_TRANSIT

    def test_no_memory_anywhere_falls_back_insitu(self, make_state):
        state = make_state(insitu_memory_ok=False, intransit_memory_ok=False)
        action = MiddlewarePolicy().decide(state)
        assert action.placement is Placement.IN_SITU

    def test_case2_idle_staging_goes_intransit(self, make_state):
        # Fig. 4 ts=1,2: in-transit processors idle -> in-transit, even if
        # the in-transit execution itself is slower than in-situ.
        state = make_state(staging_busy=False, est_insitu_time=0.5,
                           est_intransit_time=8.0)
        action = MiddlewarePolicy().decide(state)
        assert action.placement is Placement.IN_TRANSIT

    def test_case3_busy_insitu_faster(self, make_state):
        # Fig. 4 ts=30: busy staging, in-situ faster than waiting.
        state = make_state(staging_busy=True, est_intransit_remaining=10.0,
                           est_insitu_time=2.0)
        action = MiddlewarePolicy().decide(state)
        assert action.placement is Placement.IN_SITU

    def test_case3_busy_backlog_clears_first(self, make_state):
        state = make_state(staging_busy=True, est_intransit_remaining=1.0,
                           est_insitu_time=5.0)
        action = MiddlewarePolicy().decide(state)
        assert action.placement is Placement.IN_TRANSIT

    def test_decisions_carry_reasons(self, make_state):
        action = MiddlewarePolicy().decide(make_state())
        assert action.reason


class TestResourcePolicy:
    def test_memory_bound(self, make_state):
        # 8 GiB over 128 cores = 64 MiB/core; 1 GiB data -> 16 cores.
        state = make_state(data_bytes=1 * GiB, analysis_work=0.0,
                           est_next_sim_time=100.0)
        action = ResourcePolicy().decide(state)
        assert action.cores == 16

    def test_balance_bound(self, make_state):
        # Work 1e7 at 1e4/core/s with budget (60 + 1) s -> ceil(16.4) = 17.
        state = make_state(data_bytes=1.0, analysis_work=1e7,
                           est_next_sim_time=60.0, est_send_time=1.0)
        action = ResourcePolicy().decide(state)
        assert action.cores == 17

    def test_max_of_bounds(self, make_state):
        state = make_state(data_bytes=1 * GiB, analysis_work=1e7,
                           est_next_sim_time=60.0, est_send_time=1.0)
        action = ResourcePolicy().decide(state)
        assert action.cores == max(16, 17)

    def test_clamped_to_total(self, make_state):
        state = make_state(analysis_work=1e9, est_next_sim_time=1.0,
                           est_send_time=0.0)
        action = ResourcePolicy().decide(state)
        assert action.cores == state.staging_total_cores
        assert "clamped" in action.reason

    def test_zero_budget_uses_all_cores(self, make_state):
        state = make_state(est_next_sim_time=0.0, est_send_time=0.0,
                           data_bytes=1.0, analysis_work=1e6)
        action = ResourcePolicy().decide(state)
        assert action.cores == state.staging_total_cores

    def test_min_cores_floor(self, make_state):
        state = make_state(data_bytes=1.0, analysis_work=0.0,
                           est_next_sim_time=100.0)
        action = ResourcePolicy(min_cores=8).decide(state)
        assert action.cores == 8

    def test_min_cores_validation(self):
        with pytest.raises(PolicyError):
            ResourcePolicy(min_cores=0)

    def test_small_data_small_allocation(self, make_state):
        # Fig. 9's start: small data -> ~50 of 256 cores.
        state = make_state(
            data_bytes=200 * MiB,
            analysis_work=2e6,
            est_next_sim_time=50.0,
            est_send_time=0.5,
            staging_total_cores=256,
            staging_active_cores=256,
            staging_memory_total=16 * GiB,
        )
        action = ResourcePolicy().decide(state)
        assert action.cores < 64

    def test_refinement_grows_allocation(self, make_state):
        def decide(data_gib, work):
            state = make_state(
                data_bytes=data_gib * GiB,
                analysis_work=work,
                est_next_sim_time=50.0,
                staging_total_cores=256,
                staging_active_cores=256,
                staging_memory_total=16 * GiB,
            )
            return ResourcePolicy().decide(state).cores

        assert decide(0.5, 1e6) < decide(2.0, 1e7) < decide(8.0, 1e8)
