"""Tests for the application-layer (data resolution) policy."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.downsample import downsample_memory_cost
from repro.core.policies.application import ApplicationLayerPolicy
from repro.core.preferences import UserHints
from repro.units import MiB


def policy(phases=((1, (2, 4, 8, 16)),)):
    return ApplicationLayerPolicy(UserHints(downsample_phases=phases))


class TestFactorSelection:
    def test_smallest_factor_when_memory_plentiful(self, make_state):
        state = make_state(rank_data_bytes=10 * MiB, rank_memory_available=100 * MiB)
        action = policy().decide(state)
        assert action.factor == 2

    def test_larger_factor_under_memory_pressure(self, make_state):
        # 100 MiB data in 3-D: factor-2 reduce needs 2*100/8 = 25 MiB,
        # factor-4 needs 2*100/64 ~ 3.1 MiB.
        state = make_state(rank_data_bytes=100 * MiB, rank_memory_available=10 * MiB)
        action = policy().decide(state)
        assert action.factor == 4

    def test_fallback_to_max_factor_when_nothing_fits(self, make_state):
        # Even factor 16 needs 2*100/4096 ~ 0.05 MiB; give less than that.
        state = make_state(rank_data_bytes=100 * MiB,
                           rank_memory_available=0.01 * MiB)
        action = policy().decide(state)
        assert action.factor == 16
        assert "forced" in action.reason

    def test_phase_hint_respected(self, make_state):
        p = policy(phases=((1, (2, 4)), (21, (2, 4, 8, 16))))
        # 100 MiB data: factor-2 needs 25 MiB, factor-4 needs 3.13 MiB,
        # factor-8 needs 0.39 MiB.  With 1 MiB available only factor >= 8
        # fits: first half is forced to 4 (max of its set), second half
        # picks 8.
        tight = dict(rank_data_bytes=100 * MiB, rank_memory_available=1 * MiB)
        early = p.decide(make_state(step=10, **tight))
        late = p.decide(make_state(step=30, **tight))
        assert early.factor == 4  # best available in {2,4}, forced
        assert late.factor == 8

    def test_factor_selected_is_feasible_or_max(self, make_state):
        state = make_state(rank_data_bytes=64 * MiB, rank_memory_available=5 * MiB)
        action = policy().decide(state)
        cost = downsample_memory_cost(state.rank_data_bytes, action.factor, state.ndim)
        feasible = cost <= state.rank_memory_available
        assert feasible or action.factor == 16

    def test_2d_memory_cost_used(self, make_state):
        # In 2-D a factor shrinks by X^2: factor 2 needs 2*100/4 = 50 MiB,
        # factor 4 needs 2*100/16 = 12.5 MiB.
        state = make_state(ndim=2, rank_data_bytes=100 * MiB,
                           rank_memory_available=20 * MiB)
        action = policy().decide(state)
        assert action.factor == 4

    def test_memory_required_helper(self, make_state):
        state = make_state(rank_data_bytes=64 * MiB)
        p = policy()
        assert p.memory_required(state, 2) == pytest.approx(2 * 64 * MiB / 8)

    @given(
        st.floats(1 * MiB, 512 * MiB),
        st.floats(1 * MiB, 1024 * MiB),
    )
    def test_monotonicity_more_memory_never_higher_factor(
        self, data_bytes, available
    ):
        from repro.core.state import OperationalState
        from repro.units import GiB

        def mk(avail):
            return OperationalState(
                step=1, ndim=3, core_rate=1e4,
                data_bytes=data_bytes * 16, rank_data_bytes=data_bytes,
                rank_memory_available=avail, analysis_work=1e6,
                sim_cores=64, staging_active_cores=8,
                est_insitu_time=1.0, est_intransit_time=1.0,
                est_intransit_remaining=0.0, staging_busy=False,
                insitu_memory_ok=True, intransit_memory_ok=True,
                staging_total_cores=8, staging_memory_total=1 * GiB,
                staging_memory_used=0.0, est_next_sim_time=1.0,
                est_send_time=0.1,
            )

        p = policy()
        f_small = p.decide(mk(available)).factor
        f_large = p.decide(mk(available * 2)).factor
        assert f_large <= f_small
