"""Tests for user preferences/hints and the operational state."""

import pytest

from repro.core.preferences import Objective, UserHints, UserPreferences
from repro.errors import PolicyError
from repro.units import GiB, MiB


class TestUserHints:
    def test_paper_phase_pattern(self):
        # Section 5.2.1: {2,4} first half, {2,4,8,16} second half of 40 steps.
        hints = UserHints(downsample_phases=((1, (2, 4)), (21, (2, 4, 8, 16))))
        assert hints.factors_for_step(1) == (2, 4)
        assert hints.factors_for_step(20) == (2, 4)
        assert hints.factors_for_step(21) == (2, 4, 8, 16)
        assert hints.factors_for_step(40) == (2, 4, 8, 16)

    def test_step_before_first_phase_uses_first(self):
        hints = UserHints(downsample_phases=((5, (2, 4)),))
        assert hints.factors_for_step(1) == (2, 4)

    def test_default_is_no_reduction(self):
        assert UserHints().factors_for_step(10) == (1,)

    def test_validation(self):
        with pytest.raises(PolicyError):
            UserHints(downsample_phases=())
        with pytest.raises(PolicyError):
            UserHints(downsample_phases=((10, (2,)), (5, (4,))))
        with pytest.raises(PolicyError):
            UserHints(downsample_phases=((1, ()),))
        with pytest.raises(PolicyError):
            UserHints(downsample_phases=((1, (0,)),))
        with pytest.raises(PolicyError):
            UserHints(monitor_interval=0)
        with pytest.raises(PolicyError):
            UserHints(entropy_thresholds=(5.0,), entropy_factors=(4,))

    def test_default_objective(self):
        assert UserPreferences().objective is Objective.MINIMIZE_TIME_TO_SOLUTION


class TestOperationalState:
    def test_validation(self, make_state):
        with pytest.raises(PolicyError):
            make_state(ndim=4)
        with pytest.raises(PolicyError):
            make_state(core_rate=0)
        with pytest.raises(PolicyError):
            make_state(sim_cores=0)
        with pytest.raises(PolicyError):
            make_state(staging_active_cores=256, staging_total_cores=128)
        with pytest.raises(PolicyError):
            make_state(data_bytes=-1)

    def test_with_reduction_scales_sizes(self, make_state):
        state = make_state(data_bytes=1 * GiB, rank_data_bytes=64 * MiB,
                           analysis_work=1e7, ndim=3)
        reduced = state.with_reduction(2)
        assert reduced.data_bytes == pytest.approx(1 * GiB / 8)
        assert reduced.rank_data_bytes == pytest.approx(8 * MiB)
        assert reduced.analysis_work == pytest.approx(1e7 / 8)
        assert reduced.est_insitu_time == pytest.approx(state.est_insitu_time / 8)
        assert reduced.est_send_time == pytest.approx(state.est_send_time / 8)

    def test_with_reduction_2d(self, make_state):
        state = make_state(ndim=2)
        reduced = state.with_reduction(4)
        assert reduced.data_bytes == pytest.approx(state.data_bytes / 16)

    def test_with_reduction_identity(self, make_state):
        state = make_state()
        assert state.with_reduction(1) is state

    def test_with_reduction_preserves_memory_fields(self, make_state):
        state = make_state()
        reduced = state.with_reduction(4)
        assert reduced.rank_memory_available == state.rank_memory_available
        assert reduced.staging_memory_total == state.staging_memory_total
        assert reduced.est_next_sim_time == state.est_next_sim_time

    def test_with_reduction_invalid(self, make_state):
        with pytest.raises(PolicyError):
            make_state().with_reduction(0)
