"""Tests for the EMA rate and transfer estimators."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.estimators import RateEstimator, TransferEstimator
from repro.errors import PolicyError


class TestRateEstimator:
    def test_initial_estimate_from_calibration(self):
        est = RateEstimator(initial_rate=100.0)
        assert est.estimate(1000.0, cores=10) == pytest.approx(1.0)

    def test_converges_to_observed_rate(self):
        est = RateEstimator(initial_rate=100.0, alpha=0.5)
        for _ in range(30):
            est.observe(work_units=50.0, cores=1, seconds=1.0)  # rate 50
        assert est.rate == pytest.approx(50.0, rel=1e-3)
        assert est.observations == 30

    def test_zero_work_ignored(self):
        est = RateEstimator(initial_rate=100.0)
        est.observe(0.0, cores=1, seconds=1.0)
        assert est.rate == 100.0
        assert est.observations == 0

    def test_validation(self):
        with pytest.raises(PolicyError):
            RateEstimator(initial_rate=0)
        with pytest.raises(PolicyError):
            RateEstimator(initial_rate=1, alpha=0)
        with pytest.raises(PolicyError):
            RateEstimator(initial_rate=1, alpha=1.5)
        est = RateEstimator(initial_rate=1)
        with pytest.raises(PolicyError):
            est.observe(1.0, cores=0, seconds=1.0)
        with pytest.raises(PolicyError):
            est.observe(1.0, cores=1, seconds=0.0)
        with pytest.raises(PolicyError):
            est.estimate(1.0, cores=0)

    @given(st.floats(1.0, 1e6), st.floats(1.0, 1e6))
    def test_rate_stays_between_extremes(self, initial, observed):
        est = RateEstimator(initial_rate=initial, alpha=0.3)
        est.observe(observed, cores=1, seconds=1.0)
        lo, hi = sorted([initial, observed])
        assert lo - 1e-9 <= est.rate <= hi + 1e-9

    def test_estimate_scales_inverse_cores(self):
        est = RateEstimator(initial_rate=10.0)
        assert est.estimate(100.0, cores=10) == pytest.approx(
            est.estimate(100.0, cores=5) / 2
        )


class TestTransferEstimator:
    def test_initial_estimate(self):
        est = TransferEstimator(initial_bandwidth=100.0, latency=0.5)
        assert est.estimate(1000.0) == pytest.approx(10.5)
        assert est.estimate(0.0) == pytest.approx(0.5)

    def test_learns_effective_bandwidth(self):
        est = TransferEstimator(initial_bandwidth=100.0, latency=0.0, alpha=0.5)
        for _ in range(30):
            est.observe(nbytes=50.0, seconds=1.0)  # 50 B/s observed
        assert est.bandwidth == pytest.approx(50.0, rel=1e-3)

    def test_latency_subtracted_from_observation(self):
        est = TransferEstimator(initial_bandwidth=100.0, latency=1.0, alpha=1.0)
        est.observe(nbytes=100.0, seconds=2.0)  # effective 1 s -> 100 B/s
        assert est.bandwidth == pytest.approx(100.0)

    def test_subliminal_observation_ignored(self):
        # A transfer faster than the latency floor carries no information.
        est = TransferEstimator(initial_bandwidth=100.0, latency=1.0)
        assert est.observe(nbytes=10.0, seconds=0.5) is False
        assert est.bandwidth == 100.0
        assert est.observations == 0

    def test_discards_are_counted(self):
        est = TransferEstimator(initial_bandwidth=100.0, latency=1.0)
        assert est.discards.value == 0
        est.observe(nbytes=10.0, seconds=0.5)
        est.observe(nbytes=10.0, seconds=1.0)  # exactly at the floor
        assert est.discards.value == 2
        assert est.observe(nbytes=10.0, seconds=2.0) is True
        assert est.discards.value == 2
        assert est.observations == 1

    def test_empty_transfer_is_not_a_discard(self):
        est = TransferEstimator(initial_bandwidth=100.0, latency=1.0)
        assert est.observe(nbytes=0.0, seconds=0.5) is False
        assert est.discards.value == 0
        assert est.observations == 0

    def test_validation(self):
        with pytest.raises(PolicyError):
            TransferEstimator(initial_bandwidth=0)
        with pytest.raises(PolicyError):
            TransferEstimator(initial_bandwidth=1, latency=-1)
        with pytest.raises(PolicyError):
            TransferEstimator(initial_bandwidth=1, alpha=2)
        est = TransferEstimator(initial_bandwidth=1)
        with pytest.raises(PolicyError):
            est.observe(-1.0, seconds=1.0)
        with pytest.raises(PolicyError):
            est.estimate(-1.0)
