"""End-to-end integration: the real coupled simulation->staging->analysis pipeline.

Runs the actual NumPy Godunov solver inside the event simulation,
publishing density fields through the DataSpaces-like shared space to a
marching-tetrahedra consumer -- the full substrate stack with real data,
asserting physical and coordination invariants.
"""

import numpy as np
import pytest

from repro.amr import AMRHierarchy, AMRStepper, Box, PolytropicGasSolver
from repro.analysis import descriptive_statistics, extract_isosurface, surface_area
from repro.analysis.isosurface import surface_stats
from repro.hpc import Simulator
from repro.staging import DataObject, DataSpace, MessageBus

N = 24
STEPS = 8


@pytest.fixture(scope="module")
def pipeline_run():
    sim = Simulator()
    space = DataSpace(sim)
    bus = MessageBus(sim)
    domain = Box((0, 0, 0), (N - 1, N - 1, N - 1))
    hierarchy = AMRHierarchy(domain, ncomp=5, nghost=2, max_levels=2,
                             max_box_size=12, dx0=1.0 / N, periodic=True)
    solver = PolytropicGasSolver(tag_threshold=0.06, blast_pressure_jump=25.0)
    stepper = AMRStepper(hierarchy, solver, regrid_interval=4)

    published = []
    analyzed = []

    def simulation(sim):
        for version in range(STEPS):
            stats = stepper.step()
            yield sim.timeout(stats.work_units / 1e6)
            density = hierarchy.levels[0].data.to_dense(
                hierarchy.level_domain(0))[0]
            space.put(DataObject("density", version, domain,
                                 payload=density.copy()))
            published.append((version, sim.now))
            bus.publish("new-step", version)
        bus.publish("new-step", None)

    def analysis(sim):
        sub = bus.subscribe("new-step")
        while True:
            version = yield sub.get()
            if version is None:
                return
            objs = space.get("density", version)
            density = objs[0].payload
            iso = float(np.percentile(density, 85))
            verts, tris = extract_isosurface(density, iso,
                                             spacing=(1 / N,) * 3)
            stats = descriptive_statistics(density)
            analyzed.append({
                "version": version,
                "time": sim.now,
                "n_tris": len(tris),
                "area": surface_area(verts, tris),
                "mesh": surface_stats(verts, tris),
                "rho_total": stats.mean * stats.count,
            })
            space.remove_version("density", version)

    sim.process(simulation(sim), name="simulation")
    done = sim.process(analysis(sim), name="analysis")
    sim.run(done)
    return sim, space, published, analyzed


class TestCoupledPipeline:
    def test_every_version_analyzed_in_order(self, pipeline_run):
        _sim, _space, published, analyzed = pipeline_run
        assert [a["version"] for a in analyzed] == list(range(STEPS))
        assert len(published) == STEPS

    def test_analysis_never_precedes_publication(self, pipeline_run):
        _sim, _space, published, analyzed = pipeline_run
        pub_times = dict(published)
        for record in analyzed:
            assert record["time"] >= pub_times[record["version"]]

    def test_space_fully_drained(self, pipeline_run):
        _sim, space, _published, _analyzed = pipeline_run
        assert space.bytes_stored == 0.0
        assert space.bytes_put_total > 0

    def test_isosurfaces_are_watertight(self, pipeline_run):
        _sim, _space, _published, analyzed = pipeline_run
        for record in analyzed:
            if record["n_tris"]:
                assert record["mesh"].closed

    def test_shock_surface_grows(self, pipeline_run):
        _sim, _space, _published, analyzed = pipeline_run
        areas = [a["area"] for a in analyzed]
        assert areas[-1] > areas[0]

    def test_mass_conserved_across_pipeline(self, pipeline_run):
        # The analysis side sees the same (conserved) total density the
        # solver maintains on the periodic domain.
        _sim, _space, _published, analyzed = pipeline_run
        totals = [a["rho_total"] for a in analyzed]
        assert max(totals) - min(totals) < 1e-6 * abs(totals[0])
