"""Tests for the DataSpace shared object space."""

import pytest

from repro.amr.box import Box
from repro.errors import StagingError
from repro.hpc.event import Simulator
from repro.staging.objects import DataObject
from repro.staging.space import DataSpace


@pytest.fixture()
def sim():
    return Simulator()


def obj(version=0, nbytes=100.0, name="rho"):
    return DataObject(name, version, Box((0, 0), (7, 7)), nbytes_hint=nbytes)


class TestPutGet:
    def test_put_then_get(self, sim):
        space = DataSpace(sim)
        a = obj()
        space.put(a)
        assert space.get("rho", 0) == [a]
        assert space.bytes_stored == 100.0

    def test_get_box_filter(self, sim):
        space = DataSpace(sim)
        a = DataObject("rho", 0, Box((0, 0), (3, 3)), nbytes_hint=1.0)
        b = DataObject("rho", 0, Box((8, 8), (9, 9)), nbytes_hint=1.0)
        space.put(a)
        space.put(b)
        assert space.get("rho", 0, Box((0, 0), (1, 1))) == [a]

    def test_get_async_blocks_until_put(self, sim):
        space = DataSpace(sim)

        def consumer(sim):
            objs = yield space.get_async("rho", 5)
            return (objs, sim.now)

        def producer(sim):
            yield sim.timeout(3.0)
            space.put(obj(version=5))

        c = sim.process(consumer(sim))
        sim.process(producer(sim))
        sim.run()
        objs, when = c.value
        assert when == 3.0 and objs[0].version == 5

    def test_get_async_immediate_when_present(self, sim):
        space = DataSpace(sim)
        space.put(obj(version=1))

        def consumer(sim):
            objs = yield space.get_async("rho", 1)
            return sim.now

        c = sim.process(consumer(sim))
        sim.run()
        assert c.value == 0.0

    def test_remove_version_frees_bytes(self, sim):
        space = DataSpace(sim)
        space.put(obj(version=0, nbytes=64))
        space.put(obj(version=1, nbytes=32))
        freed = space.remove_version("rho", 0)
        assert freed == 64
        assert space.bytes_stored == 32


class TestCapacity:
    def test_put_over_capacity_raises(self, sim):
        space = DataSpace(sim, capacity_bytes=150)
        space.put(obj(version=0, nbytes=100))
        with pytest.raises(StagingError):
            space.put(obj(version=1, nbytes=100))

    def test_available_bytes(self, sim):
        space = DataSpace(sim, capacity_bytes=200)
        space.put(obj(nbytes=50))
        assert space.available_bytes == 150
        assert DataSpace(sim).available_bytes == float("inf")

    def test_eviction_of_consumed_versions(self, sim):
        space = DataSpace(sim, capacity_bytes=150, evict_consumed=True)
        a = obj(version=0, nbytes=100)
        space.put(a)
        space.get("rho", 0)  # consume v0
        space.put(obj(version=1, nbytes=100))  # forces eviction of v0
        assert space.bytes_stored == 100
        assert space.get("rho", 0) == []

    def test_unconsumed_versions_not_evicted(self, sim):
        space = DataSpace(sim, capacity_bytes=150, evict_consumed=True)
        space.put(obj(version=0, nbytes=100))  # never consumed
        with pytest.raises(StagingError):
            space.put(obj(version=1, nbytes=100))

    def test_coupled_producer_consumer_pipeline(self, sim):
        """A simulation publishing versions and an analysis consuming them
        in lockstep -- the paper's coupling pattern."""
        space = DataSpace(sim)
        consumed = []

        def producer(sim):
            for v in range(5):
                yield sim.timeout(1.0)
                space.put(obj(version=v, nbytes=10))

        def consumer(sim):
            for v in range(5):
                objs = yield space.get_async("rho", v)
                consumed.append((v, sim.now))
                space.remove_version("rho", v)

        sim.process(producer(sim))
        sim.process(consumer(sim))
        sim.run()
        assert consumed == [(v, float(v + 1)) for v in range(5)]
        assert space.bytes_stored == 0
