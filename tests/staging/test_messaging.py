"""Tests for the pub/sub message bus."""

import pytest

from repro.errors import StagingError
from repro.hpc.event import Simulator
from repro.staging.messaging import MessageBus


@pytest.fixture()
def sim():
    return Simulator()


class TestMessageBus:
    def test_publish_reaches_subscriber(self, sim):
        bus = MessageBus(sim)
        sub = bus.subscribe("memory")

        def consumer(sim):
            msg = yield sub.get()
            return msg

        def producer(sim):
            yield sim.timeout(1.0)
            bus.publish("memory", {"rank": 3, "mb": 250})

        c = sim.process(consumer(sim))
        sim.process(producer(sim))
        sim.run()
        assert c.value == {"rank": 3, "mb": 250}

    def test_fanout_to_all_subscribers(self, sim):
        bus = MessageBus(sim)
        subs = [bus.subscribe("t") for _ in range(3)]
        assert bus.publish("t", "hello") == 3
        sim.run()
        assert all(s.pending() == 1 for s in subs)

    def test_publish_without_subscribers(self, sim):
        bus = MessageBus(sim)
        assert bus.publish("nobody", 1) == 0
        assert bus.published["nobody"] == 1

    def test_messages_ordered(self, sim):
        bus = MessageBus(sim)
        sub = bus.subscribe("t")
        received = []

        def consumer(sim):
            for _ in range(3):
                msg = yield sub.get()
                received.append(msg)

        for i in range(3):
            bus.publish("t", i)
        sim.process(consumer(sim))
        sim.run()
        assert received == [0, 1, 2]

    def test_unsubscribe_stops_delivery(self, sim):
        bus = MessageBus(sim)
        sub = bus.subscribe("t")
        bus.unsubscribe(sub)
        assert bus.publish("t", "x") == 0
        with pytest.raises(StagingError):
            bus.unsubscribe(sub)

    def test_empty_topic_rejected(self, sim):
        with pytest.raises(StagingError):
            MessageBus(sim).subscribe("")
