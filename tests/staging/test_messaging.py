"""Tests for the pub/sub message bus and the retry/backoff runner."""

import pytest

from repro.errors import StagingError
from repro.hpc.event import Simulator
from repro.staging.messaging import MessageBus, RetryPolicy, retry_with_backoff


@pytest.fixture()
def sim():
    return Simulator()


def slow_failing_attempt(sim, duration):
    """Attempt factory whose every attempt burns ``duration`` s, then fails."""

    def attempt(k):
        evt = sim.event(name=f"attempt{k}")

        def driver():
            yield sim.timeout(duration)
            evt.fail(StagingError(f"attempt {k} failed"))

        sim.process(driver())
        return evt

    return attempt


class TestRetryErrorAttribution:
    """Regression: the two retry exit conditions must not be conflated.

    ``retry_with_backoff`` has two failure exits -- the attempt budget ran
    out, or ``policy.timeout`` expired before the budget did.  The buggy
    runner re-checked the timeout *after* the loop, so a final attempt
    that merely consumed simulated time past the deadline turned a clean
    exhaustion into a bogus "retry timeout" report.
    """

    def test_exhaustion_past_timeout_reports_exhaustion(self, sim):
        # Two attempts of 6 s each (plus 0.5 s backoff) end at t=12.5,
        # past the 10 s timeout -- but both configured attempts ran, so
        # this is an exhaustion, not a timeout.
        policy = RetryPolicy(max_attempts=2, base_delay=0.5, timeout=10.0)
        retry_with_backoff(
            sim, slow_failing_attempt(sim, 6.0), policy, describe="op"
        )
        with pytest.raises(StagingError, match="retries exhausted"):
            sim.run()

    def test_timeout_before_attempts_exhausted_reports_timeout(self, sim):
        # Attempt 2 of 4 ends at t=13 and the next backoff would land past
        # the 10 s deadline: a genuine timeout with budget to spare.
        policy = RetryPolicy(max_attempts=4, base_delay=1.0, timeout=10.0)
        retry_with_backoff(
            sim, slow_failing_attempt(sim, 6.0), policy, describe="op"
        )
        with pytest.raises(StagingError, match="retry timeout"):
            sim.run()

    def test_exhaustion_error_chains_the_last_attempt_error(self, sim):
        policy = RetryPolicy(max_attempts=2, base_delay=0.5, timeout=10.0)
        retry_with_backoff(
            sim, slow_failing_attempt(sim, 6.0), policy, describe="op"
        )
        with pytest.raises(StagingError) as excinfo:
            sim.run()
        assert isinstance(excinfo.value.__cause__, StagingError)
        assert "attempt 1 failed" in str(excinfo.value.__cause__)


class TestMessageBus:
    def test_publish_reaches_subscriber(self, sim):
        bus = MessageBus(sim)
        sub = bus.subscribe("memory")

        def consumer(sim):
            msg = yield sub.get()
            return msg

        def producer(sim):
            yield sim.timeout(1.0)
            bus.publish("memory", {"rank": 3, "mb": 250})

        c = sim.process(consumer(sim))
        sim.process(producer(sim))
        sim.run()
        assert c.value == {"rank": 3, "mb": 250}

    def test_fanout_to_all_subscribers(self, sim):
        bus = MessageBus(sim)
        subs = [bus.subscribe("t") for _ in range(3)]
        assert bus.publish("t", "hello") == 3
        sim.run()
        assert all(s.pending() == 1 for s in subs)

    def test_publish_without_subscribers(self, sim):
        bus = MessageBus(sim)
        assert bus.publish("nobody", 1) == 0
        assert bus.published["nobody"] == 1

    def test_messages_ordered(self, sim):
        bus = MessageBus(sim)
        sub = bus.subscribe("t")
        received = []

        def consumer(sim):
            for _ in range(3):
                msg = yield sub.get()
                received.append(msg)

        for i in range(3):
            bus.publish("t", i)
        sim.process(consumer(sim))
        sim.run()
        assert received == [0, 1, 2]

    def test_unsubscribe_stops_delivery(self, sim):
        bus = MessageBus(sim)
        sub = bus.subscribe("t")
        bus.unsubscribe(sub)
        assert bus.publish("t", "x") == 0
        with pytest.raises(StagingError):
            bus.unsubscribe(sub)

    def test_empty_topic_rejected(self, sim):
        with pytest.raises(StagingError):
            MessageBus(sim).subscribe("")
