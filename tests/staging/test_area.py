"""Tests for the in-transit staging area."""

import pytest

from repro.errors import StagingError
from repro.hpc.event import Simulator
from repro.hpc.network import Network
from repro.staging.area import StagingArea


@pytest.fixture()
def sim():
    return Simulator()


def make_area(sim, cores=4, rate=10.0, bw=1000.0, memory=float("inf"), active=None):
    net = Network(sim)
    net.add_link("sim", "staging", bandwidth=bw)
    return StagingArea(
        sim, net, core_rate=rate, total_cores=cores, active_cores=active,
        memory_bytes=memory,
    )


class TestServiceModel:
    def test_service_time_formula(self, sim):
        area = make_area(sim, cores=4, rate=10.0)
        assert area.service_time(work_units=400.0) == pytest.approx(10.0)
        assert area.service_time(400.0, cores=8) == pytest.approx(5.0)

    def test_job_runs_after_ingest(self, sim):
        area = make_area(sim, cores=4, rate=10.0, bw=100.0)
        job = area.submit(step=0, nbytes=200.0, work_units=400.0)
        sim.run(job.done)
        # Ingest: 200/100 = 2 s; service: 400/(10*4) = 10 s.
        assert job.started_at == pytest.approx(2.0)
        assert job.finished_at == pytest.approx(12.0)

    def test_fifo_across_steps(self, sim):
        area = make_area(sim, cores=2, rate=10.0, bw=1e9)
        j1 = area.submit(0, 10.0, 100.0)
        j2 = area.submit(1, 10.0, 100.0)
        sim.run(sim.all_of([j1.done, j2.done]))
        assert j1.finished_at <= j2.started_at
        assert [j.step for j in area.completed] == [0, 1]

    def test_memory_freed_after_completion(self, sim):
        area = make_area(sim, memory=500.0)
        job = area.submit(0, 400.0, 10.0)
        assert area.memory_used == 400.0
        sim.run(job.done)
        assert area.memory_used == 0.0

    def test_submit_over_memory_raises(self, sim):
        area = make_area(sim, memory=100.0)
        area.submit(0, 80.0, 1.0)
        assert not area.can_fit(50.0)
        with pytest.raises(StagingError):
            area.submit(1, 50.0, 1.0)

    def test_bytes_ingested_accumulates(self, sim):
        area = make_area(sim)
        a = area.submit(0, 100.0, 1.0)
        b = area.submit(1, 150.0, 1.0)
        sim.run(sim.all_of([a.done, b.done]))
        assert area.bytes_ingested == 250.0

    def test_invalid_construction(self, sim):
        net = Network(sim)
        net.add_link("sim", "staging", bandwidth=1.0)
        with pytest.raises(StagingError):
            StagingArea(sim, net, core_rate=0, total_cores=4)
        with pytest.raises(StagingError):
            StagingArea(sim, net, core_rate=1, total_cores=0)
        with pytest.raises(StagingError):
            StagingArea(sim, net, core_rate=1, total_cores=4, active_cores=5)


class TestRemainingTimeEstimate:
    def test_idle_area_zero(self, sim):
        area = make_area(sim)
        assert area.estimated_remaining_time() == 0.0
        assert not area.busy

    def test_estimate_includes_running_and_queued(self, sim):
        area = make_area(sim, cores=2, rate=10.0, bw=1e12)
        area.submit(0, 1.0, 200.0)  # 10 s service
        area.submit(1, 1.0, 100.0)  # 5 s service

        def probe(sim):
            yield sim.timeout(3.0)
            return area.estimated_remaining_time()

        p = sim.process(probe(sim))
        sim.run()
        # At t=3: running job has ~7 s left (started just after ingest),
        # queued job needs 5 s.
        assert p.value == pytest.approx(12.0, abs=0.1)
        assert area.busy or p.value > 0

    def test_estimate_drains_to_zero(self, sim):
        area = make_area(sim, cores=2, rate=10.0)
        job = area.submit(0, 1.0, 100.0)
        sim.run(job.done)
        assert area.estimated_remaining_time() == pytest.approx(0.0)


class TestResizeAndUtilization:
    def test_resize_changes_future_service(self, sim):
        area = make_area(sim, cores=8, rate=10.0, active=4, bw=1e12)

        def scenario(sim):
            j1 = area.submit(0, 1.0, 400.0)  # on 4 cores: 10 s
            yield j1.done
            area.set_active_cores(8)
            j2 = area.submit(1, 1.0, 400.0)  # on 8 cores: 5 s
            yield j2.done
            return (j1.finished_at - j1.started_at, j2.finished_at - j2.started_at)

        p = sim.process(scenario(sim))
        sim.run()
        d1, d2 = p.value
        assert d1 == pytest.approx(10.0, abs=1e-6)
        assert d2 == pytest.approx(5.0, abs=1e-6)

    def test_resize_validation(self, sim):
        area = make_area(sim, cores=4)
        with pytest.raises(StagingError):
            area.set_active_cores(0)
        with pytest.raises(StagingError):
            area.set_active_cores(5)

    def test_utilization_efficiency(self, sim):
        area = make_area(sim, cores=4, rate=10.0, bw=1e12)
        job = area.submit(0, 1.0, 400.0)  # 10 s busy on 4 cores

        def wait_then_idle(sim):
            yield job.done
            yield sim.timeout(10.0)  # 10 s idle

        sim.process(wait_then_idle(sim))
        sim.run()
        # ~40 busy core-s over ~80 allocated core-s.
        assert area.utilization_efficiency() == pytest.approx(0.5, abs=0.01)
        assert area.idle_time() == pytest.approx(40.0, abs=1.0)

    def test_core_history_records_changes(self, sim):
        area = make_area(sim, cores=8, active=2)

        def resize(sim):
            yield sim.timeout(1.0)
            area.set_active_cores(6)

        sim.process(resize(sim))
        sim.run()
        assert [(s.start, s.cores) for s in area.core_history] == [(0.0, 2), (1.0, 6)]

    def test_adaptive_beats_static_utilization(self, sim):
        """The headline of Fig. 9/Eq. 12: fewer active cores for the same
        work means higher utilization efficiency."""
        results = {}
        for label, active in (("static", 8), ("adaptive", 2)):
            s = Simulator()
            area = make_area(s, cores=8, rate=10.0, active=active, bw=1e12)
            last = None
            for step in range(5):
                last = area.submit(step, 1.0, 100.0)
            s.run(last.done)

            def idle_tail(s=s):
                yield s.timeout(5.0)

            s.process(idle_tail())
            s.run()
            results[label] = area.utilization_efficiency()
        assert results["adaptive"] > results["static"]


class TestResizeFaultInterleaving:
    """Regression: an Eq. 9-10 resize racing a fault window must preserve
    the core invariant ``active_cores <= healthy_cores <= total_cores``
    (with a nominal single-core active set during a total blackout).

    The buggy area skipped the resize clamp whenever no core was healthy,
    so a resize landing inside a blackout window enabled up to
    ``total_cores``, and a later partial restore left jobs running on
    more cores than were physically healthy.
    """

    def _invariant_ok(self, area):
        return area.active_cores <= max(1, area.healthy_cores) <= area.total_cores

    def test_resize_during_seeded_blackout_is_clamped(self):
        from repro.faults import FaultInjector
        from repro.faults.scenarios import build_scenario

        plan = build_scenario("blackout", horizon=100.0, seed=7,
                              staging_cores=8, steps=12)
        injector = FaultInjector(plan)
        sim = Simulator(faults=injector)
        net = Network(sim)
        net.add_link("sim", "staging", bandwidth=1e9, latency=0.0)
        area = StagingArea(sim, net, core_rate=10.0, total_cores=8,
                           faults=injector)
        injector.attach_network(net)
        injector.arm()
        observed = []

        def resize_mid_blackout():
            # The blackout scenario kills all cores over [0.35, 0.65] of
            # the horizon; land the resize squarely inside the window.
            yield sim.timeout(50.0)
            observed.append(("reachable", area.reachable))
            area.set_active_cores(8)
            observed.append(("invariant", self._invariant_ok(area)))

        sim.process(resize_mid_blackout())
        sim.run()
        assert ("reachable", False) in observed
        assert ("invariant", True) in observed, (
            "resize during blackout must clamp to the healthy pool"
        )
        assert self._invariant_ok(area)

    def test_partial_restore_cannot_exceed_healthy_cores(self, sim):
        area = make_area(sim, cores=8)
        assert area.fail_cores(8) == 8
        # Full blackout: the nominal active set collapses to one core.
        assert area.active_cores == 1
        # A resize landing during the blackout stays clamped.
        area.set_active_cores(5)
        assert area.active_cores == 1
        assert area.restore_cores(4) == 4
        assert self._invariant_ok(area)
        # Restored capacity is re-enabled by an explicit resize only.
        area.set_active_cores(8)
        assert area.active_cores == 4
        assert self._invariant_ok(area)

    def test_fault_free_resize_path_unchanged(self, sim):
        area = make_area(sim, cores=8)
        area.set_active_cores(3)
        assert area.active_cores == 3
        area.set_active_cores(8)
        assert area.active_cores == 8
        with pytest.raises(StagingError):
            area.set_active_cores(9)
