"""Property-based tests for DataSpace accounting invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amr.box import Box
from repro.errors import StagingError
from repro.hpc.event import Simulator
from repro.staging.objects import DataObject
from repro.staging.space import DataSpace


@st.composite
def operations(draw):
    """A random sequence of put/get/remove operations."""
    ops = []
    n = draw(st.integers(1, 30))
    for _ in range(n):
        kind = draw(st.sampled_from(["put", "get", "remove"]))
        version = draw(st.integers(0, 5))
        size = draw(st.floats(1.0, 1000.0))
        ops.append((kind, version, size))
    return ops


class TestSpaceAccounting:
    @settings(deadline=None, max_examples=40)
    @given(operations())
    def test_bytes_stored_matches_live_objects(self, ops):
        sim = Simulator()
        space = DataSpace(sim)
        live: dict[int, float] = {}
        for kind, version, size in ops:
            if kind == "put":
                space.put(DataObject("v", version, Box((0,), (1,)),
                                     nbytes_hint=size))
                live[version] = live.get(version, 0.0) + size
            elif kind == "get":
                space.get("v", version)
            else:
                freed = space.remove_version("v", version)
                assert freed == pytest.approx(live.pop(version, 0.0))
        assert space.bytes_stored == pytest.approx(sum(live.values()))
        assert space.available_bytes == float("inf")

    @settings(deadline=None, max_examples=30)
    @given(st.lists(st.floats(1.0, 100.0), min_size=1, max_size=20),
           st.floats(150.0, 500.0))
    def test_capacity_never_exceeded(self, sizes, capacity):
        sim = Simulator()
        space = DataSpace(sim, capacity_bytes=capacity, evict_consumed=True)
        for version, size in enumerate(sizes):
            try:
                space.put(DataObject("v", version, Box((0,), (1,)),
                                     nbytes_hint=size))
            except StagingError:
                pass
            # Consume everything so eviction stays possible.
            space.get("v", version)
            assert space.bytes_stored <= capacity + 1e-9

    @settings(deadline=None, max_examples=30)
    @given(st.integers(0, 8), st.integers(1, 8))
    def test_get_async_fifo_with_interleaved_puts(self, pre_puts, post_puts):
        """Every waiter is woken exactly by its version's publication."""
        sim = Simulator()
        space = DataSpace(sim)
        total = pre_puts + post_puts
        woken = []

        def consumer(sim, version):
            objs = yield space.get_async("v", version)
            woken.append((version, sim.now, len(objs)))

        for v in range(pre_puts):
            space.put(DataObject("v", v, Box((0,), (1,)), nbytes_hint=1.0))
        for v in range(total):
            sim.process(consumer(sim, v))

        def producer(sim):
            for v in range(pre_puts, total):
                yield sim.timeout(1.0)
                space.put(DataObject("v", v, Box((0,), (1,)), nbytes_hint=1.0))

        sim.process(producer(sim))
        sim.run()
        assert len(woken) == total
        for version, when, count in woken:
            assert count >= 1
            if version >= pre_puts:
                assert when == pytest.approx(version - pre_puts + 1.0)
            else:
                assert when == 0.0
