"""Tests for data objects and the box index."""

import numpy as np
import pytest

from repro.amr.box import Box
from repro.errors import StagingError
from repro.staging.index import BoxIndex
from repro.staging.objects import DataObject


def obj(name="rho", version=0, box=None, nbytes=100.0):
    return DataObject(name, version, box or Box((0, 0), (7, 7)), nbytes_hint=nbytes)


class TestDataObject:
    def test_payload_size(self):
        o = DataObject("u", 1, Box((0,), (9,)), payload=np.zeros(10))
        assert o.nbytes == 80

    def test_hint_size(self):
        assert obj(nbytes=12345.0).nbytes == 12345.0

    def test_exactly_one_size_source(self):
        with pytest.raises(StagingError):
            DataObject("u", 0, Box((0,), (1,)))
        with pytest.raises(StagingError):
            DataObject("u", 0, Box((0,), (1,)), payload=np.zeros(2), nbytes_hint=1.0)

    def test_validation(self):
        with pytest.raises(StagingError):
            DataObject("", 0, Box((0,), (1,)), nbytes_hint=1.0)
        with pytest.raises(StagingError):
            DataObject("u", -1, Box((0,), (1,)), nbytes_hint=1.0)
        with pytest.raises(StagingError):
            DataObject("u", 0, Box((0,), (1,)), nbytes_hint=-1.0)

    def test_uids_unique(self):
        assert obj().uid != obj().uid

    def test_overlaps(self):
        o = obj(box=Box((0, 0), (3, 3)))
        assert o.overlaps(Box((2, 2), (5, 5)))
        assert not o.overlaps(Box((10, 10), (12, 12)))


class TestBoxIndex:
    def test_insert_query(self):
        idx = BoxIndex()
        a = obj(version=3, box=Box((0, 0), (3, 3)))
        b = obj(version=3, box=Box((8, 8), (11, 11)))
        idx.insert(a)
        idx.insert(b)
        assert len(idx) == 2
        hits = idx.query("rho", 3, Box((2, 2), (4, 4)))
        assert hits == [a]
        assert set(idx.query("rho", 3)) == {a, b}

    def test_query_missing_version_empty(self):
        idx = BoxIndex()
        idx.insert(obj(version=1))
        assert idx.query("rho", 2) == []
        assert idx.query("other", 1) == []

    def test_duplicate_uid_rejected(self):
        idx = BoxIndex()
        a = obj()
        idx.insert(a)
        with pytest.raises(StagingError):
            idx.insert(a)

    def test_remove(self):
        idx = BoxIndex()
        a = obj()
        idx.insert(a)
        idx.remove(a)
        assert len(idx) == 0
        with pytest.raises(StagingError):
            idx.remove(a)

    def test_versions_sorted(self):
        idx = BoxIndex()
        for v in (5, 1, 3):
            idx.insert(obj(version=v))
        assert idx.versions("rho") == [1, 3, 5]
        assert idx.latest_version("rho") == 5
        assert idx.latest_version("nope") is None

    def test_drop_version(self):
        idx = BoxIndex()
        a = obj(version=2)
        b = obj(version=2)
        idx.insert(a)
        idx.insert(b)
        dropped = idx.drop_version("rho", 2)
        assert set(dropped) == {a, b}
        assert len(idx) == 0
